#include "core/study.h"

#include <algorithm>
#include <cstdio>

#include "obs/attrib.h"
#include "obs/slo.h"
#include "util/strings.h"

namespace psc::core {

std::vector<SessionRecord> CampaignResult::rtmp() const {
  std::vector<SessionRecord> out;
  for (const SessionRecord& r : sessions) {
    if (r.stats.protocol == client::Protocol::Rtmp) out.push_back(r);
  }
  return out;
}

std::vector<SessionRecord> CampaignResult::hls() const {
  std::vector<SessionRecord> out;
  for (const SessionRecord& r : sessions) {
    if (r.stats.protocol == client::Protocol::Hls) out.push_back(r);
  }
  return out;
}

std::vector<double> CampaignResult::metric(
    const std::vector<SessionRecord>& recs,
    double (*fn)(const SessionRecord&)) {
  std::vector<double> out;
  out.reserve(recs.size());
  for (const SessionRecord& r : recs) out.push_back(fn(r));
  return out;
}

client::DeviceConfig Study::galaxy_s3() {
  client::DeviceConfig d;
  d.model = "Galaxy S3";
  d.max_decode_fps = 26.5;  // older SoC drops frames at 30 fps
  return d;
}

client::DeviceConfig Study::galaxy_s4() {
  client::DeviceConfig d;
  d.model = "Galaxy S4";
  d.max_decode_fps = 29.7;
  return d;
}

Study::Study(const StudyConfig& cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      own_world_(std::make_unique<service::World>(sim_, cfg.world,
                                                  cfg.seed ^ 0x0170BB57ull)),
      world_view_(own_world_.get()),
      servers_(cfg.seed ^ 0x5EEDull),
      api_(*world_view_, servers_, cfg.api) {
  servers_.load_ledger().set_epoch_length(cfg_.load.epoch_length);
  obs_.trace.set_enabled(obs::trace_enabled());
  obs_.log.set_enabled(obs::metrics_enabled());
  api_.set_obs(obs_ptr());
  init_faults();
  init_aggregate(nullptr);
}

Study::Study(const StudyConfig& cfg, const SharedWorldContext& shared)
    : cfg_(cfg),
      rng_(cfg.seed),
      replay_world_(
          std::make_unique<service::ReplayWorld>(sim_, shared.timeline)),
      world_view_(replay_world_.get()),
      load_board_(shared.load_board),
      servers_(shared.campaign_seed ^ 0x5EEDull),
      api_(*world_view_, servers_, cfg.api) {
  servers_.load_ledger().set_epoch_length(cfg_.load.epoch_length);
  obs_.trace.set_enabled(obs::trace_enabled());
  obs_.log.set_enabled(obs::metrics_enabled());
  api_.set_obs(obs_ptr());
  init_faults();
  init_aggregate(&shared);
}

void Study::init_faults() {
  if (!cfg_.fault.enabled) return;
  if (!cfg_.fault.plan_text.empty()) {
    auto parsed = fault::Plan::parse(cfg_.fault.plan_text);
    if (parsed) {
      fault_plan_ =
          std::make_unique<fault::Plan>(std::move(parsed).value());
    } else {
      std::fprintf(stderr,
                   "psc: fault plan rejected (%s); generating from seed "
                   "%llu instead\n",
                   parsed.error().message.c_str(),
                   static_cast<unsigned long long>(cfg_.fault.seed));
    }
  }
  if (!fault_plan_) {
    fault_plan_ = std::make_unique<fault::Plan>(
        fault::Plan::generate(cfg_.fault.seed, cfg_.fault.gen));
  }
  injector_ = std::make_unique<fault::Injector>(sim_, *fault_plan_);
  session_faults_ =
      fault::SessionFaults{injector_.get(), cfg_.fault.policy};
  api_.set_fault_hook(injector_->api_hook());
  if (obs::Obs* o = obs_ptr()) {
    for (const fault::Episode& e : fault_plan_->episodes()) {
      o->metrics
          .counter(strf("fault_episodes_total{kind=\"%s\"}",
                        fault::kind_name(e.kind)))
          .add(1);
    }
  }
}

void Study::init_aggregate(const SharedWorldContext* shared) {
  if (!cfg_.aggregate.enabled) return;
  if (shared != nullptr) {
    aggregate_ = shared->aggregate;
  } else {
    // Independent mode: every shard freezes its *own* world process (the
    // exact process own_world_ runs live — same config, same seed
    // derivation) and integrates a private fluid audience over it. All
    // fluid epochs pre-merge into a study-local board, so sessions pay
    // the aggregate load penalties from epoch 1 on even without the
    // shared-world barrier schedule.
    const auto tl = service::WorldTimeline::record(
        cfg_.world, cfg_.seed ^ 0x0170BB57ull, cfg_.aggregate.gen.horizon,
        cfg_.load.epoch_length);
    aggregate_ = std::make_shared<service::AggregateAudience>(
        tl, service::make_flash_crowd_schedule(cfg_.aggregate), servers_,
        cfg_.aggregate, cfg_.load.epoch_length);
    own_board_ =
        std::make_unique<service::EpochLoadBoard>(cfg_.load.epoch_length);
    for (std::size_t e = 0; e < aggregate_->ledger().epoch_count(); ++e) {
      own_board_->merge_epoch(e, aggregate_->ledger());
    }
    load_board_ = own_board_.get();
  }
  if (aggregate_ != nullptr) {
    api_.set_viewer_overlay(
        [agg = aggregate_.get()](const service::BroadcastInfo& b,
                                 TimePoint t) {
          return agg->extra_viewers_at(b, t);
        });
  }
}

std::optional<json::Value> Study::access_video_with_retry(
    const std::string& broadcast_id, std::size_t session_idx) {
  fault::Backoff backoff(session_faults_->policy.api_retry,
                         Rng(rng_.engine()()));
  int attempt = 0;
  for (;;) {
    json::Object req;
    req["cookie"] = strf("viewer-%zu", session_idx);
    req["broadcast_id"] = broadcast_id;
    int status = 200;
    json::Value access = api_.call("accessVideo",
                                   json::Value(std::move(req)), sim_.now(),
                                   &status);
    // Injected API latency burst: the app simply sees a slow response.
    const Duration extra = api_.last_injected_latency();
    if (extra > Duration{0}) sim_.run_until(sim_.now() + extra);
    if (status < 500) return access;
    if (backoff.exhausted()) {
      if (obs::Obs* o = obs_ptr()) {
        o->metrics.counter("api_gave_up_total").add(1);
        o->log.log(obs::EventKind::GaveUp, to_s(sim_.now()), 0, 0, "api");
      }
      return std::nullopt;
    }
    const Duration delay = backoff.next();
    ++attempt;
    if (obs::Obs* o = obs_ptr()) {
      o->metrics.counter("api_retries_total").add(1);
      o->log.log(obs::EventKind::Retry, to_s(sim_.now()), attempt, status,
                 "api");
    }
    sim_.run_until(sim_.now() + delay);
  }
}

void Study::report_playback_meta(const client::SessionStats& st) {
  json::Object stats;
  stats["n_stalls"] = st.stall_count;
  if (st.protocol == client::Protocol::Rtmp) {
    stats["join_time_s"] = st.join_time_s;
    stats["stall_time_s"] = st.stalled_s;
    stats["playback_latency_s"] = st.playback_latency_s;
    stats["frame_rate"] = st.reported_fps;
  }
  json::Object body;
  body["cookie"] = "auto-viewer";
  body["broadcast_id"] = st.broadcast_id;
  body["stats"] = json::Value(std::move(stats));
  (void)api_.call("playbackMeta", json::Value(std::move(body)), sim_.now());
}

std::optional<SessionRecord> Study::run_one_session(client::Device& device,
                                                    bool analyze) {
  const Duration need = cfg_.preroll + cfg_.watch_time + seconds(5);
  const service::BroadcastInfo* b = world_view_->teleport(rng_, need);
  if (b == nullptr) return std::nullopt;
  const TimePoint session_begin = sim_.now();

  // Spin up the live pipeline for this broadcast and let it run so the
  // origin backlog / CDN edge have content before the viewer arrives.
  service::PipelineConfig pipe_cfg = cfg_.pipeline;
  pipe_cfg.arena = &arena_;  // recycle segment buffers across sessions
  if (cfg_.hls_adaptive && pipe_cfg.transcode_ladder.empty()) {
    pipe_cfg.transcode_ladder = {
        {"mid", media::TranscodeProfile{0.55, 5}, 220e3},
        {"low", media::TranscodeProfile{0.3, 10}, 120e3},
    };
  }
  auto pipeline_ptr = std::make_unique<service::LiveBroadcastPipeline>(
      sim_, *b, pipe_cfg);
  service::LiveBroadcastPipeline& pipeline = *pipeline_ptr;
  pipeline.set_obs(obs_ptr());
  pipeline.start(need + seconds(5));
  sim_.run_until(sim_.now() + cfg_.preroll);

  // accessVideo: the service decides RTMP vs HLS from current popularity.
  const std::size_t session_idx = session_counter_++;
  // Session uid: shard-stable, so event-log records and histogram
  // exemplars name the same session for any PSC_THREADS.
  const std::uint64_t session_uid =
      (cfg_.shard_index << 20) | static_cast<std::uint64_t>(session_idx);
  if (obs::Obs* o = obs_ptr()) {
    // The protocol is unknown until accessVideo answers; API retry
    // events recorded before then carry an empty proto.
    o->log.begin_session(session_uid, "", to_s(sim_.now()));
  }
  json::Value access;
  if (session_faults_) {
    auto a = access_video_with_retry(b->id, session_idx);
    if (!a) {
      // The API never recovered within the retry budget: the app drops
      // back to the channel list without ever opening a player. The
      // pipeline still gets an orderly retirement.
      if (obs::Obs* o = obs_ptr()) {
        o->log.end_session(to_s(sim_.now()), 0, 0);
        attribute_current_session(o, session_uid, session_begin, sim_.now(),
                                  Duration{0});
      }
      pipeline.stop();
      pipeline.retire();
      retired_pipelines_.emplace_back(pipeline.safe_destroy_at(),
                                      std::move(pipeline_ptr));
      return std::nullopt;
    }
    access = std::move(*a);
  } else {
    json::Object req;
    req["cookie"] = strf("viewer-%zu", session_idx);
    req["broadcast_id"] = b->id;
    access =
        api_.call("accessVideo", json::Value(std::move(req)), sim_.now());
  }
  const bool use_hls = access["protocol"].as_string() == "hls";
  if (obs::Obs* o = obs_ptr()) {
    o->log.set_proto(use_hls ? "hls" : "rtmp");
  }

  // Per-session buffer jitter: the app's effective startup buffer varies
  // with device state and stream conditions, which is what spreads the
  // join-time and latency boxplots in Fig. 4 (identical thresholds would
  // collapse them to a point).
  const double jitter = rng_.uniform(0.7, 1.8);
  std::unique_ptr<client::ViewerSession> session;
  // Which servers this session loads and how much (HLS stripes two
  // edges, half each); the shared-world load board turns the *previous*
  // epoch's merged load on those servers into extra path latency now.
  std::string load_ip_a;
  std::string load_ip_b;
  double load_weight = 1.0;
  Duration penalty_paid{0};  // worst load penalty on this session's path
  // Priced at session_begin, not now: the clock is past the preroll
  // here, and a session that teleported near the end of epoch e would
  // otherwise ask for epoch e itself — which the barrier has not merged
  // yet (silent zero). The contract is "a session starting in epoch e
  // reads the merged load of epoch e-1" (load.h), and the start is the
  // teleport.
  const auto penalty = [&](const std::string& ip) {
    return load_board_ == nullptr
               ? Duration{0}
               : load_board_->penalty(ip, session_begin, cfg_.load);
  };
  if (use_hls) {
    client::PlayerConfig pc = cfg_.hls_player;
    pc.start_threshold = seconds(to_s(pc.start_threshold) * jitter);
    const service::MediaServer& edge_a = servers_.hls_edges()[0];
    const service::MediaServer& edge_b = servers_.hls_edges()[1];
    load_ip_a = edge_a.ip;
    load_ip_b = edge_b.ip;
    load_weight = 0.5;
    const Duration pen_a = penalty(edge_a.ip);
    const Duration pen_b = penalty(edge_b.ip);
    penalty_paid = std::max(pen_a, pen_b);
    session = std::make_unique<client::HlsViewerSession>(
        sim_, pipeline, device, edge_a, edge_b, pc, rng_.engine()(),
        client::HlsViewerSession::Mode::Live, cfg_.hls_adaptive, pen_a,
        pen_b, obs_ptr());
  } else {
    client::PlayerConfig pc = cfg_.rtmp_player;
    pc.start_threshold = seconds(to_s(pc.start_threshold) * jitter);
    pc.resume_threshold = seconds(to_s(pc.resume_threshold) * jitter);
    const service::MediaServer& origin =
        servers_.rtmp_origin_for(b->location, b->id);
    load_ip_a = origin.ip;
    penalty_paid = penalty(origin.ip);
    session = std::make_unique<client::RtmpViewerSession>(
        sim_, pipeline, device, origin, pc, rng_.engine()(), penalty_paid,
        obs_ptr());
  }
  if (session_faults_) session->set_faults(&*session_faults_);
  const TimePoint watch_begin = sim_.now();
  session->start(cfg_.watch_time);
  sim_.run_until(sim_.now() + cfg_.watch_time + seconds(2));
  pipeline.stop();

  SessionRecord rec;
  rec.stats = session->stats();
  report_playback_meta(rec.stats);
  if (aggregate_ != nullptr) {
    rec.stats.cohort = true;
    rec.stats.cohort_weight = cfg_.aggregate.sample_rate > 0
                                  ? 1.0 / cfg_.aggregate.sample_rate
                                  : 1.0;
    rec.stats.agg_viewers_at_join =
        aggregate_->viewers_at(b->id, watch_begin);
    if (load_board_ != nullptr) {
      rec.stats.server_load_at_join =
          load_board_->previous_epoch_concurrent(load_ip_a, session_begin);
    }
  }

  // Book this session into the pool's per-epoch load account.
  const TimePoint watch_end = sim_.now();
  const double bytes = static_cast<double>(rec.stats.bytes_received);
  auto& ledger = servers_.load_ledger();
  ledger.add_session(load_ip_a, watch_begin, watch_end, load_weight, bytes);
  if (!load_ip_b.empty()) {
    ledger.add_session(load_ip_b, watch_begin, watch_end, load_weight,
                       bytes);
  }
  if (analyze) {
    auto analysis = use_hls
                        ? analysis::reconstruct_hls(session->capture())
                        : analysis::reconstruct_rtmp(session->capture());
    if (analysis) rec.analysis = std::move(analysis).value();
  }
  if (obs::Obs* o = obs_ptr()) {
    const char* proto = use_hls ? "hls" : "rtmp";
    o->metrics.counter(strf("sessions_total{proto=\"%s\"}", proto)).add(1);
    // Exemplar context: worst join/stall buckets link back to the
    // session uid and its sim-time neighbourhood in the trace.
    o->metrics.histogram(strf("join_time_s{proto=\"%s\"}", proto))
        .record(rec.stats.join_time_s, to_s(watch_end), session_uid);
    o->metrics.histogram(strf("session_stalled_s{proto=\"%s\"}", proto))
        .record(rec.stats.stalled_s, to_s(watch_end), session_uid);
    // One kernel-lane span per session: teleport to watch end, on the
    // shard's own trace lane.
    o->trace.complete("kernel",
                      strf("session %zu %s", session_idx, proto),
                      session_begin, watch_end);
    if (session_faults_) {
      o->metrics.counter("session_reconnects_total")
          .add(rec.stats.reconnects);
      o->metrics.counter("session_retries_total").add(rec.stats.retries);
    }
    if (aggregate_ != nullptr) {
      o->metrics.counter("cohort_sessions_total").add(1);
      o->metrics.counter("cohort_weight_total")
          .add(rec.stats.cohort_weight);
      o->metrics.histogram("cohort_agg_viewers_at_join")
          .record(rec.stats.agg_viewers_at_join);
    }
    // SLO observations bucket by the load epoch of the session *start*
    // (same convention as the load board: the teleport prices the epoch).
    const double epoch_len = to_s(cfg_.load.epoch_length);
    const std::uint64_t epoch =
        epoch_len > 0
            ? static_cast<std::uint64_t>(to_s(session_begin) / epoch_len)
            : 0;
    o->slo.observe("join_s", proto, epoch, rec.stats.join_time_s);
    o->slo.observe("stall_ratio", proto, epoch, rec.stats.stall_ratio);
    o->log.end_session(to_s(watch_end), rec.stats.played_s,
                       rec.stats.stalled_s);
    attribute_current_session(o, session_uid, session_begin, watch_end,
                              penalty_paid);
  }
  // Retire rather than destroy: late events may still reference these
  // objects; retirement frees their bulk buffers and neuters callbacks.
  // Destruction happens in purge_retired() once each object's event
  // horizon has passed.
  session->retire();
  pipeline.retire();
  retired_sessions_.emplace_back(session->safe_destroy_at(),
                                 std::move(session));
  retired_pipelines_.emplace_back(pipeline.safe_destroy_at(),
                                  std::move(pipeline_ptr));
  return rec;
}

namespace {

/// fault::Plan kinds -> attribution causes (obs cannot see fault:: — the
/// dependency runs the other way — so the mapping lives here).
obs::Cause cause_from_fault_kind(fault::Kind k) {
  switch (k) {
    case fault::Kind::LinkBlackout: return obs::Cause::RadioBlackout;
    case fault::Kind::RateCollapse: return obs::Cause::RateCollapse;
    case fault::Kind::HandoverGap: return obs::Cause::HandoverGap;
    case fault::Kind::EdgeOutage: return obs::Cause::EdgeOutage;
    case fault::Kind::OriginRestart: return obs::Cause::OriginRestart;
    case fault::Kind::ApiErrorBurst: return obs::Cause::ApiFault;
    case fault::Kind::ApiLatencyBurst: return obs::Cause::ApiFault;
  }
  return obs::Cause::Unattributed;
}

}  // namespace

void Study::attribute_current_session(obs::Obs* o, std::uint64_t uid,
                                      TimePoint begin, TimePoint end,
                                      Duration penalty_paid) {
  if (!o->log.enabled()) return;
  obs::SessionEvidence evidence;
  evidence.load_penalty_s = to_s(penalty_paid);
  if (fault_plan_ != nullptr) {
    const double lo = to_s(begin);
    const double hi = to_s(end);
    for (const fault::Episode& e : fault_plan_->episodes()) {
      const double es = to_s(e.start);
      const double ee = to_s(e.end());
      if (ee <= lo) continue;
      if (es >= hi) break;  // episodes are sorted by start
      evidence.episodes.push_back(
          {cause_from_fault_kind(e.kind), es, ee});
    }
  }
  const obs::SessionAttribution att =
      obs::attribute_session(o->log.current_session_events(), evidence);
  obs::record_attribution(*o, att, uid);
}

void Study::finalize_obs() {
  obs::Obs* o = obs_ptr();
  if (o == nullptr) return;
  o->metrics.counter("sim_events_scheduled_total")
      .add(static_cast<double>(sim_.events_scheduled()));
  o->metrics.counter("sim_events_executed_total")
      .add(static_cast<double>(sim_.events_executed()));
  o->metrics.counter("sim_events_cancelled_total")
      .add(static_cast<double>(sim_.events_cancelled()));
  o->metrics.counter("sim_callback_heap_allocs_total")
      .add(static_cast<double>(sim_.callback_heap_allocs()));
  o->metrics.counter("sim_wheel_inserts_total")
      .add(static_cast<double>(sim_.wheel_inserts()));
  o->metrics.gauge("sim_heap_depth_max")
      .set_max(static_cast<double>(sim_.max_heap_depth()));

  // Media-path arena: allocation avoidance + slice refcount churn.
  const util::BufferArena::Stats arena = arena_.stats();
  o->metrics.counter("arena_allocations_total")
      .add(static_cast<double>(arena.allocations()));
  o->metrics.counter("arena_buffers_reused_total")
      .add(static_cast<double>(arena.buffers_reused));
  o->metrics.counter("arena_slices_adopted_total")
      .add(static_cast<double>(arena.slices_adopted));
  o->metrics.counter("arena_slice_retains_total")
      .add(static_cast<double>(arena.slice_retains));
  o->metrics.gauge("arena_outstanding_peak")
      .set_max(static_cast<double>(arena.outstanding_peak));
  o->metrics.gauge("sim_virtual_time_s").set_max(to_s(sim_.now()));
  o->metrics.counter("trace_events_dropped_total")
      .add(static_cast<double>(o->trace.dropped()));
  o->metrics.counter("log_events_dropped_total")
      .add(static_cast<double>(o->log.dropped()));

  // SLO violations as tracer instants, stamped at the failing epoch's
  // end. Evaluated on this shard's own observations (the campaign-level
  // verdicts over the merged track live in the snapshot's `slo` section).
  obs::emit_violation_instants(o->trace, o->slo, obs::active_slo_config(),
                               to_s(cfg_.load.epoch_length));

  // Load-ledger occupancy: what the pool's per-epoch account booked.
  const service::EpochLoadLedger& ledger = servers_.load_ledger();
  obs::Counter& sess_s = o->metrics.counter("load_session_seconds_total");
  obs::Counter& bytes = o->metrics.counter("load_bytes_total");
  obs::Counter& reqs = o->metrics.counter("load_requests_total");
  obs::Histogram& occ = o->metrics.histogram("load_epoch_session_seconds");
  for (std::size_t e = 0; e < ledger.epoch_count(); ++e) {
    const auto* epoch = ledger.epoch(e);
    if (epoch == nullptr) continue;
    for (const auto& [ip, acct] : *epoch) {
      sess_s.add(acct.session_seconds);
      bytes.add(acct.bytes);
      reqs.add(acct.requests);
      occ.record(acct.session_seconds);
    }
  }
}

KernelTotals Study::kernel_totals() const {
  KernelTotals t;
  t.events_executed = sim_.events_executed();
  t.events_scheduled = sim_.events_scheduled();
  t.wheel_inserts = sim_.wheel_inserts();
  t.callback_heap_allocs = sim_.callback_heap_allocs();
  const util::BufferArena::Stats arena = arena_.stats();
  t.arena_allocations = arena.allocations();
  t.arena_buffers_reused = arena.buffers_reused;
  t.slices_adopted = arena.slices_adopted;
  t.slice_retains = arena.slice_retains;
  return t;
}

void Study::purge_retired() {
  const TimePoint now = sim_.now();
  std::erase_if(retired_pipelines_,
                [now](const auto& e) { return e.first < now; });
  std::erase_if(retired_sessions_,
                [now](const auto& e) { return e.first < now; });
}

CampaignResult Study::run_campaign(int n, BitRate bandwidth_limit,
                                   const client::DeviceConfig& device_cfg,
                                   bool analyze) {
  if (!world_started_) {
    if (own_world_) own_world_->start();
    world_started_ = true;
    sim_.run_until(sim_.now() + seconds(30));
  }
  devices_.push_back(
      std::make_unique<client::Device>(sim_, device_cfg, rng_.engine()()));
  client::Device& device = *devices_.back();
  if (bandwidth_limit > 0) device.set_bandwidth_limit(bandwidth_limit);

  CampaignResult result;
  for (int i = 0; i < n; ++i) {
    auto rec = run_one_session(device, analyze);
    if (rec) result.sessions.push_back(std::move(*rec));
    // The adb script pushes "close", "home", then Teleports again.
    sim_.run_until(sim_.now() + seconds(3));
    purge_retired();
  }
  return result;
}

void Study::begin_campaign(BitRate bandwidth_limit, bool two_device,
                           const client::DeviceConfig& device_cfg) {
  if (campaign_begun_) return;
  campaign_begun_ = true;
  if (!world_started_) {
    if (own_world_) own_world_->start();
    world_started_ = true;
    sim_.run_until(sim_.now() + seconds(30));
  }
  if (two_device) {
    devices_.push_back(std::make_unique<client::Device>(sim_, galaxy_s3(),
                                                        rng_.engine()()));
    devices_.push_back(std::make_unique<client::Device>(sim_, galaxy_s4(),
                                                        rng_.engine()()));
  } else {
    devices_.push_back(std::make_unique<client::Device>(sim_, device_cfg,
                                                        rng_.engine()()));
  }
  if (bandwidth_limit > 0) {
    for (auto& d : devices_) d->set_bandwidth_limit(bandwidth_limit);
  }
}

int Study::run_sessions_until(TimePoint deadline, int max_sessions,
                              bool analyze, CampaignResult* out) {
  int attempted = 0;
  while (sim_.now() < deadline && epoch_attempted_ < max_sessions) {
    // Alternate devices per session (S3, S4, S3, ... in two_device mode).
    client::Device& device =
        *devices_[static_cast<std::size_t>(epoch_attempted_) %
                  devices_.size()];
    ++epoch_attempted_;
    ++attempted;
    auto rec = run_one_session(device, analyze);
    if (rec && out != nullptr) out->sessions.push_back(std::move(*rec));
    // close -> home -> next Teleport, exactly as run_campaign paces it.
    sim_.run_until(sim_.now() + seconds(3));
    purge_retired();
  }
  return attempted;
}

CampaignResult Study::run_two_device_campaign(int n, BitRate bandwidth_limit,
                                              bool analyze) {
  CampaignResult all;
  const int half = n / 2;
  CampaignResult s3 = run_campaign(half, bandwidth_limit, galaxy_s3(),
                                   analyze);
  CampaignResult s4 = run_campaign(n - half, bandwidth_limit, galaxy_s4(),
                                   analyze);
  all.sessions = std::move(s3.sessions);
  for (SessionRecord& r : s4.sessions) all.sessions.push_back(std::move(r));
  return all;
}

}  // namespace psc::core

// FLV audio/video tag payload format.
//
// RTMP carries audio and video messages whose payloads are FLV tag bodies:
// a VideoTagHeader (frame type + codec id + AVC packet type + composition
// time) in front of AVCC video data, and an AudioTagHeader in front of AAC
// data. The paper's pipeline used wireshark's RTMP dissector to pull these
// chunks out and "joined them after dropping some bytes of unknown
// meaning" — those bytes are precisely these tag headers.
#pragma once

#include <cstdint>
#include <optional>

#include "media/h264.h"
#include "media/types.h"
#include "util/bytes.h"
#include "util/result.h"

namespace psc::flv {

enum class VideoFrameFlag : std::uint8_t { Keyframe = 1, Interframe = 2 };
enum class AvcPacketType : std::uint8_t { SequenceHeader = 0, Nalu = 1 };
enum class AacPacketType : std::uint8_t { SequenceHeader = 0, Raw = 1 };

constexpr std::uint8_t kCodecAvc = 7;
constexpr std::uint8_t kSoundFormatAac = 10;

/// Video tag body: [frame_type|codec] [avc_packet_type] [cts24] [data].
Bytes make_video_tag(bool keyframe, AvcPacketType pkt_type,
                     std::int32_t composition_time_ms, BytesView data);

/// The AVC sequence-header tag carrying the AVCDecoderConfigurationRecord.
Bytes make_avc_sequence_header(const media::Sps& sps, const media::Pps& pps);

/// Audio tag body: [format|rate|size|type] [aac_packet_type] [data].
Bytes make_audio_tag(AacPacketType pkt_type, BytesView data);

struct VideoTag {
  bool keyframe = false;
  AvcPacketType packet_type = AvcPacketType::Nalu;
  std::int32_t composition_time_ms = 0;
  Bytes data;  // AVCC NALs or decoder config
};

struct AudioTag {
  AacPacketType packet_type = AacPacketType::Raw;
  Bytes data;
};

Result<VideoTag> parse_video_tag(BytesView body);
Result<AudioTag> parse_audio_tag(BytesView body);

}  // namespace psc::flv

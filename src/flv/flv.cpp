#include "flv/flv.h"

namespace psc::flv {

Bytes make_video_tag(bool keyframe, AvcPacketType pkt_type,
                     std::int32_t composition_time_ms, BytesView data) {
  ByteWriter w;
  const auto frame_flag = keyframe ? VideoFrameFlag::Keyframe
                                   : VideoFrameFlag::Interframe;
  w.u8(static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(frame_flag) << 4) | kCodecAvc));
  w.u8(static_cast<std::uint8_t>(pkt_type));
  w.u24be(static_cast<std::uint32_t>(composition_time_ms) & 0xFFFFFF);
  w.raw(data);
  return w.take();
}

Bytes make_avc_sequence_header(const media::Sps& sps, const media::Pps& pps) {
  const Bytes cfg = media::write_avc_decoder_config(sps, pps);
  return make_video_tag(/*keyframe=*/true, AvcPacketType::SequenceHeader,
                        /*composition_time_ms=*/0, cfg);
}

Bytes make_audio_tag(AacPacketType pkt_type, BytesView data) {
  ByteWriter w;
  // SoundFormat=10 (AAC), SoundRate=3 (44kHz), SoundSize=1, SoundType=1.
  w.u8(static_cast<std::uint8_t>((kSoundFormatAac << 4) | 0x0F));
  w.u8(static_cast<std::uint8_t>(pkt_type));
  w.raw(data);
  return w.take();
}

Result<VideoTag> parse_video_tag(BytesView body) {
  ByteReader r(body);
  auto b0 = r.u8();
  if (!b0) return b0.error();
  if ((b0.value() & 0x0F) != kCodecAvc) {
    return make_error("unsupported", "non-AVC video tag");
  }
  VideoTag tag;
  tag.keyframe =
      ((b0.value() >> 4) & 0x0F) == static_cast<int>(VideoFrameFlag::Keyframe);
  auto pt = r.u8();
  if (!pt) return pt.error();
  tag.packet_type = static_cast<AvcPacketType>(pt.value());
  auto cts = r.u24be();
  if (!cts) return cts.error();
  // Sign-extend 24-bit composition time.
  std::int32_t v = static_cast<std::int32_t>(cts.value());
  if (v & 0x800000) v |= static_cast<std::int32_t>(0xFF000000u);
  tag.composition_time_ms = v;
  auto data = r.bytes(r.remaining());
  if (!data) return data.error();
  tag.data = std::move(data).value();
  return tag;
}

Result<AudioTag> parse_audio_tag(BytesView body) {
  ByteReader r(body);
  auto b0 = r.u8();
  if (!b0) return b0.error();
  if ((b0.value() >> 4) != kSoundFormatAac) {
    return make_error("unsupported", "non-AAC audio tag");
  }
  AudioTag tag;
  auto pt = r.u8();
  if (!pt) return pt.error();
  tag.packet_type = static_cast<AacPacketType>(pt.value());
  auto data = r.bytes(r.remaining());
  if (!data) return data.error();
  tag.data = std::move(data).value();
  return tag;
}

}  // namespace psc::flv

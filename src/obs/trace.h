// Deterministic sim-time tracing.
//
// A Tracer records spans and instants into a fixed-capacity per-shard
// ring buffer. Timestamps are *simulated* time (microseconds of the
// shard's virtual clock), never wall clock, so a trace is a pure function
// of the campaign seed: byte-identical across PSC_THREADS, across
// machines, across runs. The sharded runner collects one event vector per
// shard and the Chrome exporter lays each shard out as its own thread
// lane (tid = shard index) — open the file in about://tracing or Perfetto
// and the campaign reads like a per-shard timeline.
//
// Event names are kept to (static category, short name) so recording a
// span is one struct append; the ring drops the oldest events when full
// (drop count reported) which keeps memory bounded and behaviour
// deterministic.
#pragma once

#include "obs/obs.h"

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

#if PSC_OBS

namespace psc::obs {

/// One Chrome trace_event. phase 'X' = complete span (ts..ts+dur),
/// 'i' = instant.
struct TraceEvent {
  const char* cat = "";  // static-lifetime category string
  std::string name;
  char phase = 'X';
  double ts_us = 0;   // sim time, microseconds
  double dur_us = 0;  // 'X' only
};

class Tracer {
 public:
  /// Capacity is a model constant, not a tuning knob: changing it changes
  /// which events survive in a saturated trace.
  static constexpr std::size_t kDefaultCapacity = 1 << 15;

  explicit Tracer(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Record a completed span [begin, end) — call at span end, when the
  /// duration is known.
  void complete(const char* cat, std::string name, TimePoint begin,
                TimePoint end) {
    if (!enabled_) return;
    push({cat, std::move(name), 'X', to_us(begin), to_us(end) - to_us(begin)});
  }

  /// Record an instantaneous event.
  void instant(const char* cat, std::string name, TimePoint at) {
    if (!enabled_) return;
    push({cat, std::move(name), 'i', to_us(at), 0});
  }

  /// Events in record order (ring rotated so the oldest survivor is
  /// first).
  std::vector<TraceEvent> take_events();
  std::uint64_t dropped() const { return dropped_; }
  std::size_t size() const { return ring_.size(); }

 private:
  static double to_us(TimePoint t) { return to_s(t) * 1e6; }
  void push(TraceEvent ev);

  std::size_t capacity_;
  std::size_t head_ = 0;  // index of the oldest event once saturated
  std::uint64_t dropped_ = 0;
  bool enabled_ = false;
  std::vector<TraceEvent> ring_;
};

/// Serialize per-shard event vectors (index = shard = Chrome tid) as a
/// Chrome trace_event JSON document ({"traceEvents":[...]}), loadable in
/// about://tracing and Perfetto. Shards are emitted in order and events
/// in record order, so the output is deterministic.
std::string chrome_trace_json(
    const std::vector<std::vector<TraceEvent>>& shards);

}  // namespace psc::obs

#else  // !PSC_OBS

namespace psc::obs {

struct TraceEvent {};

class Tracer {
 public:
  explicit Tracer(std::size_t = 0) {}
  bool enabled() const { return false; }
  void set_enabled(bool) {}
  void complete(const char*, std::string, TimePoint, TimePoint) {}
  void instant(const char*, std::string, TimePoint) {}
  std::vector<TraceEvent> take_events() { return {}; }
  std::uint64_t dropped() const { return 0; }
  std::size_t size() const { return 0; }
};

inline std::string chrome_trace_json(
    const std::vector<std::vector<TraceEvent>>&) {
  return "{\"traceEvents\":[]}\n";
}

}  // namespace psc::obs

#endif  // PSC_OBS

// Causal attribution: tag each stall (and slow join) with a ranked cause.
//
// The attribution pass runs once per session, at session end, on the
// shard thread: it replays the session's structured event log
// (obs/eventlog.h) against the *evidence* the caller collected —
// fault-episode windows active near the session, the epoch load penalty
// the session actually paid — and picks one cause per stall span by a
// fixed ranking:
//
//   1. fault episode with the dominant overlap of the stall window
//      (ties: lower Cause enum value, then earlier window start)
//   2. the last failed segment fetch shortly before/inside the stall
//      (404 = edge_miss, 5xx = edge_outage, timeout = chunk_pacing)
//   3. an ABR down-switch shortly before the stall (abr_down_switch)
//   4. a load penalty at join above the floor (origin_load)
//   5. media/fetch progress during the stall (chunk_pacing: the link is
//      delivering, just not fast enough)
//   6. unattributed
//
// obs must not depend on fault (fault depends on obs), so episodes reach
// this pass as neutral EvidenceWindows; core::Study converts
// fault::Plan episodes to windows (see cause_from_fault_kind mapping in
// study.cpp and docs/OBSERVABILITY.md).
//
// Everything here is deterministic: inputs are per-shard event logs and
// seeded fault plans, the ranking has no ties left to chance, and the
// recorded series merge like any other Registry series (in shard order).
#pragma once

#include "obs/obs.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/eventlog.h"

#if PSC_OBS

namespace psc::obs {

struct Obs;

/// Cause taxonomy, ranked: lower enum value wins overlap ties. The first
/// five mirror fault::Plan kinds (see docs/ROBUSTNESS.md), api_fault
/// covers both API burst kinds, the rest are delivery-path diagnoses.
enum class Cause : std::uint8_t {
  RadioBlackout,   // fault: LinkBlackout
  RateCollapse,    // fault: RateCollapse
  HandoverGap,     // fault: HandoverGap
  EdgeOutage,      // fault: EdgeOutage (or a 5xx on the blocking fetch)
  OriginRestart,   // fault: OriginRestart
  ApiFault,        // fault: ApiErrorBurst / ApiLatencyBurst
  EdgeMiss,        // blocking segment 404'd at the edge (freshness miss)
  OriginLoad,      // epoch load penalty paid at join above the floor
  AbrDownSwitch,   // ABR stepped down just before the stall
  ChunkPacing,     // media kept arriving during the stall, just too slow
  Unattributed,    // no matching evidence
};

inline constexpr std::size_t kCauseCount = 11;

/// Stable snake_case name ("radio_blackout", ...).
const char* cause_name(Cause c);

/// One evidence interval [start_s, end_s) during which `cause` was
/// active for this session (e.g. a fault episode targeting its link).
struct EvidenceWindow {
  Cause cause = Cause::Unattributed;
  double start_s = 0;
  double end_s = 0;
};

/// Everything the caller knows about the session beyond its event log.
struct SessionEvidence {
  std::vector<EvidenceWindow> episodes;
  double load_penalty_s = 0;  // epoch load penalty paid at join
};

struct AttribConfig {
  double load_penalty_floor_s = 0.05;  // below this, load is not a cause
  double slow_join_s = 5.0;            // joins at/above this get a cause
  double fetch_lookback_s = 2.0;       // failed fetch → stall window
  double abr_lookback_s = 4.0;         // down-switch → stall window
};

struct StallAttribution {
  double start_s = 0;
  double end_s = 0;
  /// The player's own accounting of the span, carried separately from
  /// end_s - start_s so per-cause totals re-add to the session's stalled
  /// seconds without floating-point drift.
  double dur_s = 0;
  Cause cause = Cause::Unattributed;
};

struct SessionAttribution {
  std::vector<StallAttribution> stalls;
  double stall_s = 0;     // sum of stall span durations
  bool slow_join = false;
  double join_s = 0;
  Cause join_cause = Cause::Unattributed;
};

/// Pure attribution pass over one session's events. Stall spans are the
/// StallStart/StallEnd pairs in `events` (an unmatched StallStart is
/// closed at the SessionEnd timestamp). Never fails: a stall with no
/// matching evidence tags Cause::Unattributed.
SessionAttribution attribute_session(const std::vector<LogEvent>& events,
                                     const SessionEvidence& evidence,
                                     const AttribConfig& cfg = {});

/// Record an attribution into the bundle's registry/tracer:
///   stall_seconds_total{cause="…"}   counter, seconds
///   stall_events_total{cause="…"}    counter
///   stall_attributed_s{cause="…"}    histogram (with exemplars)
///   slow_joins_total{cause="…"}      counter (slow joins only)
/// plus one "attrib" tracer instant per stall naming the cause.
void record_attribution(Obs& obs, const SessionAttribution& att,
                        std::uint64_t session_uid);

class Registry;

/// Snapshot section summarizing the attribution series already recorded
/// in `metrics`:
///   {"total_stall_s":…,     — sum of the session_stalled_s histograms
///    "attributed_s":…,      — sum of the per-cause stall seconds
///    "causes":[{"cause":…,"stall_s":…,"stalls":…},…],   (name order)
///    "slow_joins":[{"cause":…,"count":…},…]}
/// total_stall_s and attributed_s agree to within float merge noise
/// (≤1e-9 on campaign scales) — CI asserts it.
std::string attribution_json(const Registry& metrics);

/// The top `n` causes by stall seconds, worst first, from the registry's
/// attribution counters (for BENCH-line cause fields).
std::vector<std::pair<std::string, double>> top_causes(
    const Registry& metrics, std::size_t n);

}  // namespace psc::obs

#else  // !PSC_OBS

namespace psc::obs {

struct Obs;

enum class Cause : std::uint8_t {
  RadioBlackout,
  RateCollapse,
  HandoverGap,
  EdgeOutage,
  OriginRestart,
  ApiFault,
  EdgeMiss,
  OriginLoad,
  AbrDownSwitch,
  ChunkPacing,
  Unattributed,
};

inline constexpr std::size_t kCauseCount = 11;

inline const char* cause_name(Cause) { return ""; }

struct EvidenceWindow {
  Cause cause = Cause::Unattributed;
  double start_s = 0;
  double end_s = 0;
};

struct SessionEvidence {
  std::vector<EvidenceWindow> episodes;
  double load_penalty_s = 0;
};

struct AttribConfig {
  double load_penalty_floor_s = 0.05;
  double slow_join_s = 5.0;
  double fetch_lookback_s = 2.0;
  double abr_lookback_s = 4.0;
};

struct StallAttribution {
  double start_s = 0;
  double end_s = 0;
  double dur_s = 0;
  Cause cause = Cause::Unattributed;
};

struct SessionAttribution {
  std::vector<StallAttribution> stalls;
  double stall_s = 0;
  bool slow_join = false;
  double join_s = 0;
  Cause join_cause = Cause::Unattributed;
};

inline SessionAttribution attribute_session(const std::vector<LogEvent>&,
                                            const SessionEvidence&,
                                            const AttribConfig& = {}) {
  return {};
}

inline void record_attribution(Obs&, const SessionAttribution&,
                               std::uint64_t) {}

class Registry;

inline std::string attribution_json(const Registry&) {
  return "{\"total_stall_s\":0,\"attributed_s\":0,\"causes\":[],"
         "\"slow_joins\":[]}";
}

inline std::vector<std::pair<std::string, double>> top_causes(
    const Registry&, std::size_t) {
  return {};
}

}  // namespace psc::obs

#endif  // PSC_OBS

// Observability switchboard.
//
// Two independent switches control the subsystem:
//
//  * Compile time: build with PSC_OBS=0 (cmake -DPSC_OBS=OFF) and every
//    metric/trace type in obs/ becomes an inert stand-in whose inline
//    methods do nothing — instrumentation call sites compile away
//    entirely. The default is PSC_OBS=1.
//
//  * Run time: metrics_enabled() / trace_enabled() gate whether a Study
//    actually hands its Obs bundle to the components it builds. They
//    initialise from the environment (PSC_METRICS truthy; PSC_TRACE_OUT
//    non-empty) and benches override them from --metrics-out/--trace-out
//    flags before any campaign starts. Flip them only while no campaign
//    is running: shards read them concurrently.
//
// The unit of collection is the Obs bundle: one Registry + one Tracer,
// owned by exactly one single-threaded writer (a Study — i.e. a shard),
// exactly like the shard's RNG and Simulation. The sharded runner merges
// bundles in shard order, which keeps snapshots and traces byte-identical
// for any PSC_THREADS.
#pragma once

#ifndef PSC_OBS
#define PSC_OBS 1
#endif

namespace psc::obs {

/// Runtime switch for metric collection (default: PSC_METRICS env var is
/// set to something other than "" or "0"). Always false when PSC_OBS=0.
bool metrics_enabled();
void set_metrics_enabled(bool on);

/// Runtime switch for trace collection (default: PSC_TRACE_OUT env var is
/// non-empty). Always false when PSC_OBS=0.
bool trace_enabled();
void set_trace_enabled(bool on);

/// True when either collector is on — the cheap test a Study uses to
/// decide whether to wire its Obs bundle through at all.
inline bool enabled() { return metrics_enabled() || trace_enabled(); }

}  // namespace psc::obs

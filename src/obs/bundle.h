// The per-shard observability bundle: one metric registry + one tracer +
// one structured event log + one SLO track, single-writer, passed by
// pointer (nullptr = instrumentation off) from a Study down into the
// components it builds.
#pragma once

#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace psc::obs {

struct Obs {
  Registry metrics;
  Tracer trace;
  EventLog log;
  SloTrack slo;
};

}  // namespace psc::obs

// The per-shard observability bundle: one metric registry + one tracer,
// single-writer, passed by pointer (nullptr = instrumentation off) from a
// Study down into the components it builds.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace psc::obs {

struct Obs {
  Registry metrics;
  Tracer trace;
};

}  // namespace psc::obs

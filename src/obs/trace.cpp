#include "obs/trace.h"

#include <cstdio>

#if PSC_OBS

namespace psc::obs {

void Tracer::push(TraceEvent ev) {
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
    return;
  }
  // Saturated: overwrite the oldest slot.
  ring_[head_] = std::move(ev);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> Tracer::take_events() {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(std::move(ring_[(head_ + i) % ring_.size()]));
  }
  ring_.clear();
  head_ = 0;
  return out;
}

namespace {

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char ch = *s;
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
      out += buf;
    } else {
      out += ch;
    }
  }
}

void append_ts(std::string& out, double us) {
  // Microsecond timestamps with fixed sub-microsecond precision keeps the
  // format deterministic and Perfetto-friendly.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  out += buf;
}

}  // namespace

std::string chrome_trace_json(
    const std::vector<std::vector<TraceEvent>>& shards) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Name the process and each shard lane so Perfetto shows "shard N".
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"psc campaign\"}}";
  first = false;
  for (std::size_t shard = 0; shard < shards.size(); ++shard) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%zu,\"args\":{\"name\":\"shard %zu\"}}",
                  shard, shard);
    out += buf;
  }
  for (std::size_t shard = 0; shard < shards.size(); ++shard) {
    for (const TraceEvent& ev : shards[shard]) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"";
      append_escaped(out, ev.name.c_str());
      out += "\",\"cat\":\"";
      append_escaped(out, ev.cat);
      out += "\",\"ph\":\"";
      out += ev.phase;
      out += "\",\"ts\":";
      append_ts(out, ev.ts_us);
      if (ev.phase == 'X') {
        out += ",\"dur\":";
        append_ts(out, ev.dur_us);
      }
      if (ev.phase == 'i') out += ",\"s\":\"t\"";
      char ids[48];
      std::snprintf(ids, sizeof(ids), ",\"pid\":1,\"tid\":%zu}", shard);
      out += ids;
    }
  }
  out += "]}\n";
  return out;
}

}  // namespace psc::obs

#endif  // PSC_OBS

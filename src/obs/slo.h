// Sim-time SLO engine: declarative objectives evaluated per epoch.
//
// An SloObjective is "quantile of metric (optionally per protocol) must
// stay under threshold", e.g. `p99 join_s proto=rtmp < 5`. Sessions feed
// observations into a per-shard SloTrack — one fixed-layout histogram
// per (metric, proto, epoch) — which merges across shards exactly like
// the Registry (bucket adds, order-insensitive), so evaluation results
// are byte-identical for any PSC_THREADS.
//
// Epochs are the EpochLoadBoard's load epochs (session start time /
// epoch length), which makes SLO verdicts line up with the load ledger
// and the fault timeline in traces. Each objective is evaluated per
// epoch (pass/fail against the threshold) plus a burn-rate view: the
// worst fraction of failing epochs inside any trailing window of
// `burn_window` epochs — 1.0 means the budget burned continuously.
//
// Config comes from default_slo_config() or a text file (PSC_SLO env
// var) in the same spirit as fault::Plan's text form:
//
//   # psc-slo v1
//   slo join_p99_rtmp p99 join_s proto=rtmp < 5 burn_window=3
//   slo stall_ratio_p90_hls p90 stall_ratio proto=hls < 0.02 burn_window=3
//
// Violations surface three ways: the `slo` snapshot section (see
// bench::Reporter), "slo" tracer instants at the failing epoch's end,
// and psc_report's pass/fail table.
#pragma once

#include "obs/obs.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

#if PSC_OBS

namespace psc::obs {

struct SloObjective {
  std::string name;     // unique, e.g. "join_p99_rtmp"
  std::string metric;   // "join_s", "stall_ratio", ...
  std::string proto;    // "rtmp" | "hls" | "" = all protocols
  double quantile = 0.99;
  double threshold = 0;
  int burn_window = 3;  // epochs per burn-rate window
};

struct SloConfig {
  std::vector<SloObjective> objectives;
};

/// The paper-derived defaults: join p99 under the RTMP/HLS split
/// thresholds, stall ratio p90 under 2% for both protocols.
SloConfig default_slo_config();

/// Parse the text form shown above. Returns false (and sets *err) on
/// the first malformed line; comments and blank lines are skipped.
bool parse_slo_config(const std::string& text, SloConfig* out,
                      std::string* err);
std::string slo_config_to_text(const SloConfig& cfg);

/// Process-wide active config: parsed once from the file named by the
/// PSC_SLO env var, falling back to default_slo_config(). A parse error
/// falls back to the defaults too (stderr warning).
const SloConfig& active_slo_config();

/// Per-shard observation store: metric|proto -> epoch -> histogram.
/// Single-writer like the Registry; merge in shard order.
class SloTrack {
 public:
  void observe(const char* metric, const char* proto, std::uint64_t epoch,
               double value);
  void merge(const SloTrack& other);
  bool empty() const { return series_.empty(); }

  const std::map<std::string, std::map<std::uint64_t, Histogram>>& series()
      const {
    return series_;
  }

 private:
  std::map<std::string, std::map<std::uint64_t, Histogram>> series_;
};

struct SloEpochResult {
  std::uint64_t epoch = 0;
  std::uint64_t count = 0;  // observations in the epoch
  double value = 0;         // the objective's quantile over the epoch
  bool pass = true;
};

struct SloResult {
  SloObjective objective;
  std::vector<SloEpochResult> epochs;
  std::uint64_t violations = 0;
  double worst_burn = 0;  // max failing fraction over any trailing window
  bool pass = true;
};

/// Evaluate every objective against the merged track. Objectives whose
/// metric|proto series has no observations evaluate to pass with zero
/// epochs (absence of evidence is not a violation).
std::vector<SloResult> evaluate_slo(const SloTrack& track,
                                    const SloConfig& cfg);

/// The `slo` snapshot section: {"config":[...],"results":[...]}.
std::string slo_json(const SloTrack& track, const SloConfig& cfg);

/// One "slo" tracer instant per failing epoch, stamped at the epoch's
/// end. Called per shard on the shard's own track, so instants land in
/// the lane of the shard that observed the violation.
void emit_violation_instants(Tracer& trace, const SloTrack& track,
                             const SloConfig& cfg, double epoch_len_s);

}  // namespace psc::obs

#else  // !PSC_OBS

namespace psc::obs {

struct SloObjective {
  std::string name;
  std::string metric;
  std::string proto;
  double quantile = 0.99;
  double threshold = 0;
  int burn_window = 3;
};

struct SloConfig {
  std::vector<SloObjective> objectives;
};

inline SloConfig default_slo_config() { return {}; }
inline bool parse_slo_config(const std::string&, SloConfig*, std::string*) {
  return true;
}
inline std::string slo_config_to_text(const SloConfig&) { return ""; }
inline const SloConfig& active_slo_config() {
  static const SloConfig kEmpty;
  return kEmpty;
}

class SloTrack {
 public:
  void observe(const char*, const char*, std::uint64_t, double) {}
  void merge(const SloTrack&) {}
  bool empty() const { return true; }
};

struct SloEpochResult {
  std::uint64_t epoch = 0;
  std::uint64_t count = 0;
  double value = 0;
  bool pass = true;
};

struct SloResult {
  SloObjective objective;
  std::vector<SloEpochResult> epochs;
  std::uint64_t violations = 0;
  double worst_burn = 0;
  bool pass = true;
};

inline std::vector<SloResult> evaluate_slo(const SloTrack&,
                                           const SloConfig&) {
  return {};
}
inline std::string slo_json(const SloTrack&, const SloConfig&) {
  return "{\"config\":[],\"results\":[]}";
}
inline void emit_violation_instants(Tracer&, const SloTrack&,
                                    const SloConfig&, double) {}

}  // namespace psc::obs

#endif  // PSC_OBS

// Deterministic metrics: counters, gauges and fixed-bucket log-linear
// histograms collected into a Registry.
//
// Everything here is built for the sharded campaign runner's determinism
// contract: a registry is single-writer (one per shard, like the RNG and
// the Simulation), all aggregation state is order-insensitive (integer
// bucket counts, min/max) or accumulated in a deterministic order
// (per-shard sums, merged in shard order exactly like CampaignResult and
// EpochLoadBoard), and every exporter formats numbers through one
// deterministic printer. Two runs of the same campaign therefore produce
// byte-identical snapshots for any PSC_THREADS.
//
// Quantiles come from the histogram's fixed log-linear buckets, never from
// the raw samples, so p50/p90/p99 cannot depend on floating-point
// summation order. Bucket resolution is 16 linear sub-buckets per power of
// two (< 4.5% relative error), which is plenty for latency distributions.
//
// When the observability subsystem is compiled out (PSC_OBS=0, see
// obs/obs.h) this header provides inert stand-ins with the same API so
// call sites compile to nothing.
#pragma once

#include "obs/obs.h"

#include <cstdint>
#include <map>
#include <string>

#if PSC_OBS

namespace psc::obs {

/// Print `v` exactly the same way on every platform/run: integers (the
/// common case for counters and bucket-derived quantiles) without a
/// decimal point, everything else with %.9g.
std::string format_number(double v);

/// Monotonic counter. add() of integral amounts stays exact (doubles are
/// exact integers up to 2^53), so merging is associative and commutative.
class Counter {
 public:
  void add(double v = 1) { value_ += v; }
  double value() const { return value_; }
  void merge(const Counter& other) { value_ += other.value_; }

 private:
  double value_ = 0;
};

/// Last-value gauge. Shards merge by taking the maximum, the only
/// shard-count-insensitive reduction for "current level" metrics (peak
/// heap depth, peak buffer, ...).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void set_max(double v) {
    if (v > value_) value_ = v;
  }
  double value() const { return value_; }
  void merge(const Gauge& other) { set_max(other.value_); }

 private:
  double value_ = 0;
};

/// Worst-case witness for one histogram bucket: the sim-time and session
/// id of the max-value sample that landed there, so a snapshot links a
/// bucket straight to the trace span / event log of its worst session.
/// Replacement is deterministic: higher value wins, equal values go to
/// the smaller session id — order-insensitive, so shard merges commute.
struct Exemplar {
  double value = 0;
  double t_s = 0;  // sim time of the sample, seconds
  std::uint64_t session = 0;
};

/// Fixed-bucket log-linear histogram over non-negative values.
///
/// Layout: bucket 0 holds exact zeros (and negative inputs, clamped);
/// values in [2^e, 2^(e+1)) for e in [kMinExp, kMaxExp) are split into
/// kSubBuckets linear sub-buckets; anything below 2^kMinExp lands in the
/// underflow bucket, anything at or above 2^kMaxExp in the overflow
/// bucket. The layout is a compile-time constant, so two histograms are
/// always mergeable by adding bucket counts.
class Histogram {
 public:
  static constexpr int kMinExp = -20;  // ~1 microsecond when values are s
  static constexpr int kMaxExp = 30;   // ~34 years when values are s
  static constexpr int kSubBuckets = 16;
  static constexpr std::size_t kBuckets =
      3 + static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets;

  void record(double v);
  /// Record with exemplar context: additionally remembers the max-value
  /// sample per bucket (see Exemplar). Sparse — only buckets touched by
  /// this overload carry exemplars.
  void record(double v, double t_s, std::uint64_t session);
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0 : min_; }
  double max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
  }

  /// Quantile estimate from bucket counts: the representative value
  /// (upper bound) of the bucket where the cumulative count crosses
  /// q * count, clamped to the exact observed min/max. Exact for the
  /// extremes (q=0 -> min, q=1 -> max).
  double quantile(double q) const;

  void merge(const Histogram& other);

  /// Bucket index for value `v` (exposed for tests).
  static std::size_t bucket_index(double v);
  /// Upper bound (representative value) of bucket `i`.
  static double bucket_upper(std::size_t i);

  /// Per-bucket exemplars, keyed by bucket index (sparse).
  const std::map<std::size_t, Exemplar>& exemplars() const {
    return exemplars_;
  }

 private:
  void offer_exemplar(std::size_t bucket, double v, double t_s,
                      std::uint64_t session);

  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::map<std::size_t, Exemplar> exemplars_;
};

/// Named metrics, keyed by full series name (labels spelled inline, e.g.
/// `api_requests_total{api="accessVideo"}`). Backed by std::map: node
/// stability means components can cache the returned references across
/// later registrations, and iteration order — hence every export — is
/// deterministic.
class Registry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  /// Number of registered series across all three kinds.
  std::size_t series() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Fold another registry in (shard merge). Counters add, gauges take
  /// the max, histograms add bucket counts. Call in shard order for
  /// deterministic sums.
  void merge(const Registry& other);

  /// JSON snapshot:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
  ///                  "mean":..,"p50":..,"p90":..,"p99":..}}}
  std::string to_json() const;

  /// Prometheus text exposition. Histograms export as summaries
  /// (`name{quantile="0.5"}`, `name_sum`, `name_count`).
  std::string to_prometheus() const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// --- Process-wide wall-clock metrics ---
///
/// Shard wall time, epoch-barrier wait and friends are real-clock
/// measurements: they vary run to run and with the thread count, so they
/// must never contaminate the deterministic campaign registry. They go
/// into one process-global registry instead, guarded by an internal lock
/// and exported under a separate "process" key in snapshot files (CI
/// diffs the "metrics" key only).
void process_counter_add(const std::string& name, double v);
void process_gauge_max(const std::string& name, double v);
void process_hist_record(const std::string& name, double v);
/// JSON snapshot of the process registry (same shape as Registry).
std::string process_to_json();
/// Forget everything recorded so far (fresh section per bench run).
void process_reset();

}  // namespace psc::obs

#else  // !PSC_OBS — inert stand-ins; every call site folds to nothing.

namespace psc::obs {

class Counter {
 public:
  void add(double = 1) {}
  double value() const { return 0; }
  void merge(const Counter&) {}
};

class Gauge {
 public:
  void set(double) {}
  void set_max(double) {}
  double value() const { return 0; }
  void merge(const Gauge&) {}
};

struct Exemplar {
  double value = 0;
  double t_s = 0;
  std::uint64_t session = 0;
};

class Histogram {
 public:
  void record(double) {}
  void record(double, double, std::uint64_t) {}
  std::uint64_t count() const { return 0; }
  double sum() const { return 0; }
  double min() const { return 0; }
  double max() const { return 0; }
  double mean() const { return 0; }
  double quantile(double) const { return 0; }
  void merge(const Histogram&) {}
  const std::map<std::size_t, Exemplar>& exemplars() const {
    static const std::map<std::size_t, Exemplar> kEmpty;
    return kEmpty;
  }
};

class Registry {
 public:
  Counter& counter(const std::string&) { return counter_; }
  Gauge& gauge(const std::string&) { return gauge_; }
  Histogram& histogram(const std::string&) { return histogram_; }
  bool empty() const { return true; }
  std::size_t series() const { return 0; }
  void merge(const Registry&) {}
  std::string to_json() const { return "{}"; }
  std::string to_prometheus() const { return ""; }

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

inline void process_counter_add(const std::string&, double) {}
inline void process_gauge_max(const std::string&, double) {}
inline void process_hist_record(const std::string&, double) {}
inline std::string process_to_json() { return "{}"; }
inline void process_reset() {}

}  // namespace psc::obs

#endif  // PSC_OBS

#include "obs/slo.h"

#if PSC_OBS

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "util/units.h"

namespace psc::obs {

SloConfig default_slo_config() {
  SloConfig cfg;
  // Paper framing: RTMP joins split at ~5 s from HLS joins (playlist +
  // first segments push HLS past it), and a stall ratio above 2% is the
  // threshold the paper calls out as clearly degraded.
  cfg.objectives.push_back({"join_p99_rtmp", "join_s", "rtmp", 0.99, 5, 3});
  cfg.objectives.push_back({"join_p99_hls", "join_s", "hls", 0.99, 10, 3});
  cfg.objectives.push_back(
      {"stall_ratio_p90_rtmp", "stall_ratio", "rtmp", 0.9, 0.02, 3});
  cfg.objectives.push_back(
      {"stall_ratio_p90_hls", "stall_ratio", "hls", 0.9, 0.02, 3});
  return cfg;
}

bool parse_slo_config(const std::string& text, SloConfig* out,
                      std::string* err) {
  SloConfig cfg;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& why) {
    if (err != nullptr) {
      *err = "slo line " + std::to_string(lineno) + ": " + why;
    }
    return false;
  };
  while (std::getline(lines, line)) {
    ++lineno;
    std::istringstream toks(line);
    std::string tok;
    if (!(toks >> tok) || tok[0] == '#') continue;
    if (tok != "slo") return fail("expected 'slo', got '" + tok + "'");
    SloObjective obj;
    std::string quant, lt, thresh;
    if (!(toks >> obj.name >> quant >> obj.metric)) {
      return fail("expected: slo <name> p<Q> <metric> ...");
    }
    if (quant.size() < 2 || quant[0] != 'p') {
      return fail("bad quantile '" + quant + "' (want e.g. p99)");
    }
    obj.quantile = std::strtod(quant.c_str() + 1, nullptr) / 100.0;
    if (!(obj.quantile > 0) || obj.quantile > 1) {
      return fail("quantile out of range in '" + quant + "'");
    }
    // Remaining tokens: optional proto=..., then "< <threshold>", then
    // optional burn_window=N.
    bool have_threshold = false;
    while (toks >> tok) {
      if (tok.rfind("proto=", 0) == 0) {
        obj.proto = tok.substr(6);
      } else if (tok.rfind("burn_window=", 0) == 0) {
        obj.burn_window = std::atoi(tok.c_str() + 12);
        if (obj.burn_window < 1) return fail("burn_window must be >= 1");
      } else if (tok == "<") {
        if (!(toks >> thresh)) return fail("missing threshold after '<'");
        obj.threshold = std::strtod(thresh.c_str(), nullptr);
        have_threshold = true;
      } else {
        return fail("unexpected token '" + tok + "'");
      }
    }
    if (!have_threshold) return fail("missing '< <threshold>'");
    cfg.objectives.push_back(std::move(obj));
  }
  *out = std::move(cfg);
  return true;
}

std::string slo_config_to_text(const SloConfig& cfg) {
  std::string out = "# psc-slo v1\n";
  for (const SloObjective& o : cfg.objectives) {
    out += "slo " + o.name + " p" + format_number(o.quantile * 100) + " " +
           o.metric;
    if (!o.proto.empty()) out += " proto=" + o.proto;
    out += " < " + format_number(o.threshold) +
           " burn_window=" + std::to_string(o.burn_window) + "\n";
  }
  return out;
}

const SloConfig& active_slo_config() {
  static const SloConfig cfg = [] {
    const char* path = std::getenv("PSC_SLO");
    if (path == nullptr || path[0] == '\0') return default_slo_config();
    std::FILE* f = std::fopen(path, "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "psc: PSC_SLO=%s: cannot open, using defaults\n",
                   path);
      return default_slo_config();
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
    SloConfig parsed;
    std::string err;
    if (!parse_slo_config(text, &parsed, &err)) {
      std::fprintf(stderr, "psc: PSC_SLO=%s: %s, using defaults\n", path,
                   err.c_str());
      return default_slo_config();
    }
    return parsed;
  }();
  return cfg;
}

void SloTrack::observe(const char* metric, const char* proto,
                       std::uint64_t epoch, double value) {
  series_[std::string(metric) + "|" + proto][epoch].record(value);
}

void SloTrack::merge(const SloTrack& other) {
  for (const auto& [key, epochs] : other.series_) {
    auto& mine = series_[key];
    for (const auto& [epoch, hist] : epochs) mine[epoch].merge(hist);
  }
}

namespace {

/// Collect the objective's per-epoch histograms: the exact metric|proto
/// series, or — when the objective has no proto — the merge of every
/// proto series of that metric.
std::map<std::uint64_t, Histogram> epochs_for(const SloTrack& track,
                                              const SloObjective& obj) {
  std::map<std::uint64_t, Histogram> out;
  const std::string prefix = obj.metric + "|";
  for (const auto& [key, epochs] : track.series()) {
    if (obj.proto.empty()) {
      if (key.rfind(prefix, 0) != 0) continue;
    } else if (key != prefix + obj.proto) {
      continue;
    }
    for (const auto& [epoch, hist] : epochs) out[epoch].merge(hist);
  }
  return out;
}

}  // namespace

std::vector<SloResult> evaluate_slo(const SloTrack& track,
                                    const SloConfig& cfg) {
  std::vector<SloResult> out;
  out.reserve(cfg.objectives.size());
  for (const SloObjective& obj : cfg.objectives) {
    SloResult res;
    res.objective = obj;
    const auto epochs = epochs_for(track, obj);
    for (const auto& [epoch, hist] : epochs) {
      SloEpochResult er;
      er.epoch = epoch;
      er.count = hist.count();
      er.value = hist.quantile(obj.quantile);
      er.pass = er.value < obj.threshold;
      if (!er.pass) ++res.violations;
      res.epochs.push_back(er);
    }
    // Burn rate: worst failing fraction over any trailing window of
    // burn_window *observed* epochs (shorter prefixes use what exists).
    const int w = obj.burn_window;
    for (std::size_t i = 0; i < res.epochs.size(); ++i) {
      const std::size_t lo = i + 1 >= static_cast<std::size_t>(w)
                                 ? i + 1 - static_cast<std::size_t>(w)
                                 : 0;
      int fails = 0;
      for (std::size_t j = lo; j <= i; ++j) {
        if (!res.epochs[j].pass) ++fails;
      }
      const double burn =
          static_cast<double>(fails) / static_cast<double>(i - lo + 1);
      if (burn > res.worst_burn) res.worst_burn = burn;
    }
    res.pass = res.violations == 0;
    out.push_back(std::move(res));
  }
  return out;
}

namespace {

void append_objective_json(std::string& out, const SloObjective& o) {
  out += "{\"name\":\"" + o.name + "\",\"metric\":\"" + o.metric +
         "\",\"proto\":\"" + o.proto +
         "\",\"quantile\":" + format_number(o.quantile) +
         ",\"threshold\":" + format_number(o.threshold) +
         ",\"burn_window\":" + std::to_string(o.burn_window) + "}";
}

}  // namespace

std::string slo_json(const SloTrack& track, const SloConfig& cfg) {
  std::string out = "{\"config\":[";
  bool first = true;
  for (const SloObjective& o : cfg.objectives) {
    if (!first) out += ',';
    first = false;
    append_objective_json(out, o);
  }
  out += "],\"results\":[";
  first = true;
  for (const SloResult& res : evaluate_slo(track, cfg)) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + res.objective.name + "\",\"pass\":";
    out += res.pass ? "true" : "false";
    out += ",\"violations\":" +
           format_number(static_cast<double>(res.violations)) +
           ",\"worst_burn\":" + format_number(res.worst_burn) +
           ",\"epochs\":[";
    bool efirst = true;
    for (const SloEpochResult& er : res.epochs) {
      if (!efirst) out += ',';
      efirst = false;
      out += "{\"epoch\":" + format_number(static_cast<double>(er.epoch)) +
             ",\"count\":" + format_number(static_cast<double>(er.count)) +
             ",\"value\":" + format_number(er.value) + ",\"pass\":";
      out += er.pass ? "true" : "false";
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

void emit_violation_instants(Tracer& trace, const SloTrack& track,
                             const SloConfig& cfg, double epoch_len_s) {
  if (!trace.enabled()) return;
  for (const SloResult& res : evaluate_slo(track, cfg)) {
    for (const SloEpochResult& er : res.epochs) {
      if (er.pass) continue;
      trace.instant(
          "slo", "violation:" + res.objective.name,
          time_at(static_cast<double>(er.epoch + 1) * epoch_len_s));
    }
  }
}

}  // namespace psc::obs

#endif  // PSC_OBS

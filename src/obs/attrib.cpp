#include "obs/attrib.h"

#if PSC_OBS

#include <algorithm>

#include "obs/bundle.h"
#include "obs/metrics.h"
#include "util/units.h"

namespace psc::obs {

const char* cause_name(Cause c) {
  switch (c) {
    case Cause::RadioBlackout: return "radio_blackout";
    case Cause::RateCollapse: return "rate_collapse";
    case Cause::HandoverGap: return "handover_gap";
    case Cause::EdgeOutage: return "edge_outage";
    case Cause::OriginRestart: return "origin_restart";
    case Cause::ApiFault: return "api_fault";
    case Cause::EdgeMiss: return "edge_miss";
    case Cause::OriginLoad: return "origin_load";
    case Cause::AbrDownSwitch: return "abr_down_switch";
    case Cause::ChunkPacing: return "chunk_pacing";
    case Cause::Unattributed: return "unattributed";
  }
  return "unattributed";
}

namespace {

/// The fixed ranking described in the header, applied to one window
/// [start_s, end_s) of QoE damage (a stall span or a slow join).
Cause pick_cause(double start_s, double end_s,
                 const std::vector<LogEvent>& events,
                 const SessionEvidence& evidence, const AttribConfig& cfg) {
  // 1. Dominant-overlap fault episode. Ties break to the lower Cause
  //    enum value, then the earlier window start — both total orders, so
  //    the winner never depends on evidence ordering.
  double best_overlap = 0;
  const EvidenceWindow* best = nullptr;
  for (const EvidenceWindow& w : evidence.episodes) {
    const double lo = w.start_s > start_s ? w.start_s : start_s;
    const double hi = w.end_s < end_s ? w.end_s : end_s;
    const double overlap = hi - lo;
    if (overlap <= 0) continue;
    if (best == nullptr || overlap > best_overlap ||
        (overlap == best_overlap &&
         (w.cause < best->cause ||
          (w.cause == best->cause && w.start_s < best->start_s)))) {
      best_overlap = overlap;
      best = &w;
    }
  }
  if (best != nullptr) return best->cause;

  // 2. The last failed fetch shortly before or inside the window.
  const LogEvent* failed = nullptr;
  for (const LogEvent& ev : events) {
    if (ev.kind != EventKind::FetchOutcome) continue;
    if (ev.t_s < start_s - cfg.fetch_lookback_s || ev.t_s >= end_s) continue;
    const int status = static_cast<int>(ev.a);
    if (status == 200) continue;
    if (failed == nullptr || ev.t_s >= failed->t_s) failed = &ev;
  }
  if (failed != nullptr) {
    const int status = static_cast<int>(failed->a);
    if (status == 0) return Cause::ChunkPacing;  // timeout: link too slow
    if (status >= 500) return Cause::EdgeOutage;
    return Cause::EdgeMiss;  // 404: segment not at the edge yet
  }

  // 3. An ABR down-switch shortly before the window opened.
  for (const LogEvent& ev : events) {
    if (ev.kind != EventKind::AbrSwitch || ev.b >= ev.a) continue;
    if (ev.t_s >= start_s - cfg.abr_lookback_s && ev.t_s <= start_s) {
      return Cause::AbrDownSwitch;
    }
  }

  // 4. The session paid a real load penalty at join.
  if (evidence.load_penalty_s >= cfg.load_penalty_floor_s) {
    return Cause::OriginLoad;
  }

  // 5. Media kept arriving during the window: pure pacing.
  for (const LogEvent& ev : events) {
    if (ev.t_s < start_s || ev.t_s >= end_s) continue;
    if (ev.kind == EventKind::Media ||
        (ev.kind == EventKind::FetchOutcome &&
         static_cast<int>(ev.a) == 200)) {
      return Cause::ChunkPacing;
    }
  }

  return Cause::Unattributed;
}

}  // namespace

SessionAttribution attribute_session(const std::vector<LogEvent>& events,
                                     const SessionEvidence& evidence,
                                     const AttribConfig& cfg) {
  SessionAttribution out;
  if (events.empty()) return out;

  double begin_s = events.front().t_s;
  double end_s = events.back().t_s;
  double join_done_s = -1;
  bool joined = false;
  bool ended = false;
  for (const LogEvent& ev : events) {
    switch (ev.kind) {
      case EventKind::SessionBegin:
        begin_s = ev.t_s;
        break;
      case EventKind::SessionEnd:
        end_s = ev.t_s;
        ended = true;
        break;
      case EventKind::JoinDone:
        joined = true;
        join_done_s = ev.t_s;
        out.join_s = ev.a;
        break;
      default:
        break;
    }
  }
  (void)ended;

  // Stall spans: StallStart/StallEnd pairs; an unmatched StallStart (only
  // possible when the ring dropped its end) closes at session end. The
  // StallEnd payload carries the player's own duration so that per-cause
  // seconds re-add to the session's stalled total exactly.
  double open_start = -1;
  for (const LogEvent& ev : events) {
    if (ev.kind == EventKind::StallStart) {
      open_start = ev.t_s;
    } else if (ev.kind == EventKind::StallEnd) {
      const double start = open_start >= 0 ? open_start : ev.t_s - ev.a;
      StallAttribution sa;
      sa.start_s = start;
      sa.end_s = ev.t_s;
      sa.dur_s = ev.a;
      sa.cause = pick_cause(start, ev.t_s, events, evidence, cfg);
      out.stall_s += ev.a;
      out.stalls.push_back(sa);
      open_start = -1;
    }
  }
  if (open_start >= 0 && end_s > open_start) {
    StallAttribution sa;
    sa.start_s = open_start;
    sa.end_s = end_s;
    sa.dur_s = end_s - open_start;
    sa.cause = pick_cause(open_start, end_s, events, evidence, cfg);
    out.stall_s += sa.dur_s;
    out.stalls.push_back(sa);
  }

  // Slow joins get a cause too; a session that never joined at all is the
  // slowest join there is.
  if (!joined) {
    out.slow_join = true;
    out.join_s = end_s - begin_s;
    out.join_cause = pick_cause(begin_s, end_s, events, evidence, cfg);
  } else if (out.join_s >= cfg.slow_join_s) {
    out.slow_join = true;
    const double jend = join_done_s >= 0 ? join_done_s : begin_s + out.join_s;
    out.join_cause = pick_cause(begin_s, jend, events, evidence, cfg);
  }
  return out;
}

void record_attribution(Obs& obs, const SessionAttribution& att,
                        std::uint64_t session_uid) {
  for (const StallAttribution& sa : att.stalls) {
    const std::string label =
        std::string("{cause=\"") + cause_name(sa.cause) + "\"}";
    const double dur = sa.dur_s;
    obs.metrics.counter("stall_seconds_total" + label).add(dur);
    obs.metrics.counter("stall_events_total" + label).add(1);
    obs.metrics.histogram("stall_attributed_s" + label)
        .record(dur, sa.end_s, session_uid);
    obs.trace.instant("attrib", std::string("stall:") + cause_name(sa.cause),
                      time_at(sa.end_s));
  }
  if (att.slow_join) {
    obs.metrics
        .counter(std::string("slow_joins_total{cause=\"") +
                 cause_name(att.join_cause) + "\"}")
        .add(1);
  }
}

namespace {

/// Extract X from `prefix{cause="X"}`; empty when the name is not ours.
std::string cause_label(const std::string& name, const char* prefix) {
  const std::string head = std::string(prefix) + "{cause=\"";
  if (name.rfind(head, 0) != 0) return {};
  const std::size_t end = name.find('"', head.size());
  if (end == std::string::npos) return {};
  return name.substr(head.size(), end - head.size());
}

/// Round-trip-exact serialization. The attribution section's headline
/// invariant — per-cause seconds re-add to the total within 1e-9 — must
/// survive the snapshot, and format_number's 9 significant digits lose
/// ~1e-7 on minute-scale totals.
std::string format_exact(double v) {
  if (v == static_cast<double>(static_cast<long long>(v))) {
    return format_number(v);
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string attribution_json(const Registry& metrics) {
  double total = 0;
  for (const auto& [name, hist] : metrics.histograms()) {
    if (name.rfind("session_stalled_s{", 0) == 0) total += hist.sum();
  }
  double attributed = 0;
  std::string causes;
  for (const auto& [name, counter] : metrics.counters()) {
    const std::string cause = cause_label(name, "stall_seconds_total");
    if (cause.empty()) continue;
    attributed += counter.value();
    double events = 0;
    const auto it = metrics.counters().find(
        std::string("stall_events_total{cause=\"") + cause + "\"}");
    if (it != metrics.counters().end()) events = it->second.value();
    if (!causes.empty()) causes += ',';
    causes += "{\"cause\":\"" + cause +
              "\",\"stall_s\":" + format_exact(counter.value()) +
              ",\"stalls\":" + format_number(events) + "}";
  }
  std::string joins;
  for (const auto& [name, counter] : metrics.counters()) {
    const std::string cause = cause_label(name, "slow_joins_total");
    if (cause.empty()) continue;
    if (!joins.empty()) joins += ',';
    joins += "{\"cause\":\"" + cause +
             "\",\"count\":" + format_number(counter.value()) + "}";
  }
  return "{\"total_stall_s\":" + format_exact(total) +
         ",\"attributed_s\":" + format_exact(attributed) + ",\"causes\":[" +
         causes + "],\"slow_joins\":[" + joins + "]}";
}

std::vector<std::pair<std::string, double>> top_causes(
    const Registry& metrics, std::size_t n) {
  std::vector<std::pair<std::string, double>> all;
  for (const auto& [name, counter] : metrics.counters()) {
    const std::string cause = cause_label(name, "stall_seconds_total");
    if (!cause.empty()) all.emplace_back(cause, counter.value());
  }
  // Worst first; equal totals break to the name so the order is total.
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (all.size() > n) all.resize(n);
  return all;
}

}  // namespace psc::obs

#endif  // PSC_OBS

// Deterministic per-session structured event log.
//
// An EventLog records fixed-size, sim-time-stamped records — join phases,
// stall start/end, reconnect/retry attempts, segment fetch outcomes, ABR
// switches — into a per-shard ring buffer, exactly like the Tracer: one
// single-threaded writer (the shard's Study), capacity a model constant,
// drop-oldest when saturated, merged in shard order by the campaign
// runner. A log is therefore a pure function of the campaign seed and
// byte-identical across PSC_THREADS.
//
// Sessions within a shard run to completion sequentially, so the log
// keeps one *current session* context (uid + protocol) set by
// begin_session()/end_session(); every event logged in between is tagged
// with it. The attribution pass (obs/attrib.h) reads the current
// session's events back at session end via current_session_events().
//
// Events carry only static-lifetime strings and POD payloads — recording
// is one struct append, no allocation on the hot path.
#pragma once

#include "obs/obs.h"

#include <cstdint>
#include <string>
#include <vector>

#if PSC_OBS

namespace psc::obs {

enum class EventKind : std::uint8_t {
  SessionBegin,  // a = cohort weight
  SessionEnd,    // a = watch seconds, b = stalled seconds
  JoinDone,      // a = join seconds
  StallStart,    //
  StallEnd,      // a = stall seconds
  Reconnect,     // a = attempt number (RTMP reconnect ladder)
  Retry,         // a = attempt number; detail = "api" | "hls"
  FetchOutcome,  // a = HTTP status (0 = timeout), b = edge index
  AbrSwitch,     // a = from level, b = to level
  GaveUp,        // detail = who gave up ("rtmp" | "api")
  Media,         // first media while stalled: pacing evidence, a = bytes
};

/// Stable lowercase name for exports ("stall_start", ...).
const char* event_kind_name(EventKind k);

struct LogEvent {
  std::uint64_t session = 0;  // uid: (shard_index << 20) | per-shard ordinal
  double t_s = 0;             // sim time, seconds
  double a = 0;               // kind-specific payload
  double b = 0;
  EventKind kind = EventKind::SessionBegin;
  const char* proto = "";   // static-lifetime: "rtmp" | "hls" | ""
  const char* detail = "";  // static-lifetime qualifier, may be ""
};

class EventLog {
 public:
  /// Capacity is a model constant, not a tuning knob: changing it changes
  /// which events survive in a saturated log.
  static constexpr std::size_t kDefaultCapacity = 1 << 15;

  explicit EventLog(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Open a session context: subsequent log() calls are tagged with
  /// (uid, proto). Records a SessionBegin event.
  void begin_session(std::uint64_t uid, const char* proto, double t_s,
                     double weight = 1);
  /// Close the context (records SessionEnd with the session totals).
  void end_session(double t_s, double watch_s, double stalled_s);

  /// Update the current session's protocol once known (accessVideo
  /// answers after the session context opens). Later events carry it.
  void set_proto(const char* proto) { proto_ = proto; }

  /// Record one event in the current session context.
  void log(EventKind kind, double t_s, double a = 0, double b = 0,
           const char* detail = "");

  /// Events of the current session (since begin_session) that survive in
  /// the ring, in record order. Valid until the next push.
  std::vector<LogEvent> current_session_events() const;

  /// All surviving events in record order; resets the ring.
  std::vector<LogEvent> take_events();
  std::uint64_t dropped() const { return dropped_; }
  std::size_t size() const { return ring_.size(); }

 private:
  void push(const LogEvent& ev);

  std::size_t capacity_;
  std::size_t head_ = 0;      // index of the oldest event once saturated
  std::uint64_t pushed_ = 0;  // absolute count of push attempts
  std::uint64_t dropped_ = 0;
  bool enabled_ = false;
  std::uint64_t session_ = 0;
  const char* proto_ = "";
  std::uint64_t session_first_ = 0;  // absolute index of SessionBegin
  std::vector<LogEvent> ring_;
};

/// Serialize events (already merged across shards) as a JSON array of
/// objects — one line of schema documented in docs/OBSERVABILITY.md.
std::string event_log_json(const std::vector<LogEvent>& events);

}  // namespace psc::obs

#else  // !PSC_OBS

namespace psc::obs {

enum class EventKind : std::uint8_t {
  SessionBegin,
  SessionEnd,
  JoinDone,
  StallStart,
  StallEnd,
  Reconnect,
  Retry,
  FetchOutcome,
  AbrSwitch,
  GaveUp,
  Media,
};

inline const char* event_kind_name(EventKind) { return ""; }

struct LogEvent {
  std::uint64_t session = 0;
  double t_s = 0;
  double a = 0;
  double b = 0;
  EventKind kind = EventKind::SessionBegin;
  const char* proto = "";
  const char* detail = "";
};

class EventLog {
 public:
  explicit EventLog(std::size_t = 0) {}
  bool enabled() const { return false; }
  void set_enabled(bool) {}
  void begin_session(std::uint64_t, const char*, double, double = 1) {}
  void end_session(double, double, double) {}
  void set_proto(const char*) {}
  void log(EventKind, double, double = 0, double = 0, const char* = "") {}
  std::vector<LogEvent> current_session_events() const { return {}; }
  std::vector<LogEvent> take_events() { return {}; }
  std::uint64_t dropped() const { return 0; }
  std::size_t size() const { return 0; }
};

inline std::string event_log_json(const std::vector<LogEvent>&) {
  return "[]";
}

}  // namespace psc::obs

#endif  // PSC_OBS

#include "obs/eventlog.h"

#if PSC_OBS

#include <cstdio>

#include "obs/metrics.h"

namespace psc::obs {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::SessionBegin: return "session_begin";
    case EventKind::SessionEnd: return "session_end";
    case EventKind::JoinDone: return "join_done";
    case EventKind::StallStart: return "stall_start";
    case EventKind::StallEnd: return "stall_end";
    case EventKind::Reconnect: return "reconnect";
    case EventKind::Retry: return "retry";
    case EventKind::FetchOutcome: return "fetch";
    case EventKind::AbrSwitch: return "abr_switch";
    case EventKind::GaveUp: return "gave_up";
    case EventKind::Media: return "media";
  }
  return "unknown";
}

void EventLog::begin_session(std::uint64_t uid, const char* proto, double t_s,
                             double weight) {
  session_ = uid;
  proto_ = proto;
  session_first_ = pushed_;
  log(EventKind::SessionBegin, t_s, weight);
}

void EventLog::end_session(double t_s, double watch_s, double stalled_s) {
  log(EventKind::SessionEnd, t_s, watch_s, stalled_s);
  proto_ = "";
}

void EventLog::log(EventKind kind, double t_s, double a, double b,
                   const char* detail) {
  if (!enabled_) return;
  LogEvent ev;
  ev.session = session_;
  ev.t_s = t_s;
  ev.a = a;
  ev.b = b;
  ev.kind = kind;
  ev.proto = proto_;
  ev.detail = detail;
  push(ev);
}

void EventLog::push(const LogEvent& ev) {
  if (capacity_ == 0) {
    ++pushed_;
    ++dropped_;
    return;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    ring_[head_] = ev;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
  ++pushed_;
}

std::vector<LogEvent> EventLog::current_session_events() const {
  std::vector<LogEvent> out;
  if (ring_.empty()) return out;
  // Oldest surviving event's absolute index.
  const std::uint64_t oldest = pushed_ - ring_.size();
  const std::uint64_t first =
      session_first_ > oldest ? session_first_ : oldest;
  out.reserve(static_cast<std::size_t>(pushed_ - first));
  for (std::uint64_t abs = first; abs < pushed_; ++abs) {
    const std::size_t pos =
        (head_ + static_cast<std::size_t>(abs - oldest)) % ring_.size();
    out.push_back(ring_[pos]);
  }
  return out;
}

std::vector<LogEvent> EventLog::take_events() {
  std::vector<LogEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  ring_.clear();
  head_ = 0;
  return out;
}

std::string event_log_json(const std::vector<LogEvent>& events) {
  std::string out = "[";
  bool first = true;
  for (const LogEvent& ev : events) {
    if (!first) out += ',';
    first = false;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "{\"session\":%llu,\"t_s\":",
                  static_cast<unsigned long long>(ev.session));
    out += buf;
    out += format_number(ev.t_s);
    out += ",\"kind\":\"";
    out += event_kind_name(ev.kind);
    out += "\",\"proto\":\"";
    out += ev.proto;
    out += "\",\"a\":";
    out += format_number(ev.a);
    out += ",\"b\":";
    out += format_number(ev.b);
    if (ev.detail[0] != '\0') {
      out += ",\"detail\":\"";
      out += ev.detail;
      out += '"';
    }
    out += '}';
  }
  out += "]";
  return out;
}

}  // namespace psc::obs

#endif  // PSC_OBS

#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace psc::obs {

namespace {

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

bool env_nonempty(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0';
}

#if PSC_OBS
bool g_metrics = env_truthy("PSC_METRICS");
bool g_trace = env_nonempty("PSC_TRACE_OUT");
#endif

}  // namespace

#if PSC_OBS

bool metrics_enabled() { return g_metrics; }
void set_metrics_enabled(bool on) { g_metrics = on; }
bool trace_enabled() { return g_trace; }
void set_trace_enabled(bool on) { g_trace = on; }

std::string format_number(double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

// --- Histogram ---

std::size_t Histogram::bucket_index(double v) {
  if (!(v > 0)) return 0;  // zeros, negatives, NaN
  int exp = 0;
  const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac in [0.5,1)
  // Normalise to v = m * 2^(exp-1) with m in [1, 2).
  const int e = exp - 1;
  if (e < kMinExp) return 1;                              // underflow
  if (e >= kMaxExp) return kBuckets - 1;                  // overflow
  const double m = frac * 2.0;                            // [1, 2)
  int sub = static_cast<int>((m - 1.0) * kSubBuckets);    // [0, kSubBuckets)
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 2 + static_cast<std::size_t>(e - kMinExp) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

double Histogram::bucket_upper(std::size_t i) {
  if (i == 0) return 0;
  if (i == 1) return std::ldexp(1.0, kMinExp);
  if (i >= kBuckets - 1) return std::ldexp(1.0, kMaxExp);
  const std::size_t k = i - 2;
  const int e = kMinExp + static_cast<int>(k / kSubBuckets);
  const int sub = static_cast<int>(k % kSubBuckets);
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, e);
}

void Histogram::record(double v) {
  if (std::isnan(v)) v = 0;
  if (v < 0) v = 0;
  ++buckets_[bucket_index(v)];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
}

void Histogram::record(double v, double t_s, std::uint64_t session) {
  if (std::isnan(v)) v = 0;
  if (v < 0) v = 0;
  record(v);
  offer_exemplar(bucket_index(v), v, t_s, session);
}

void Histogram::offer_exemplar(std::size_t bucket, double v, double t_s,
                               std::uint64_t session) {
  auto it = exemplars_.find(bucket);
  if (it == exemplars_.end()) {
    exemplars_[bucket] = Exemplar{v, t_s, session};
    return;
  }
  Exemplar& ex = it->second;
  // Higher value wins; equal values go to the smaller session id. Both
  // comparisons are total, so the survivor is independent of arrival
  // (and hence shard-merge) order.
  if (v > ex.value || (v == ex.value && session < ex.session)) {
    ex = Exemplar{v, t_s, session};
  }
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0) return min_;
  if (q >= 1) return max_;
  // Rank of the target sample, 1-based ceil: the smallest bucket whose
  // cumulative count reaches it.
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += buckets_[i];
    if (cum >= rank) {
      const double v = bucket_upper(i);
      // The bucket bound can overshoot the true extremes; the exact
      // observed min/max are always tighter.
      if (v < min_) return min_;
      if (v > max_) return max_;
      return v;
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (const auto& [bucket, ex] : other.exemplars_) {
    offer_exemplar(bucket, ex.value, ex.t_s, ex.session);
  }
}

// --- Registry ---

void Registry::merge(const Registry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].merge(c);
  for (const auto& [name, g] : other.gauges_) gauges_[name].merge(g);
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string Registry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += format_number(c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += format_number(g.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"count\":" + format_number(static_cast<double>(h.count())) +
           ",\"sum\":" + format_number(h.sum()) +
           ",\"min\":" + format_number(h.min()) +
           ",\"max\":" + format_number(h.max()) +
           ",\"mean\":" + format_number(h.mean()) +
           ",\"p50\":" + format_number(h.quantile(0.5)) +
           ",\"p90\":" + format_number(h.quantile(0.9)) +
           ",\"p99\":" + format_number(h.quantile(0.99));
    // Exemplars are emitted only when present, so series recorded through
    // the contextless record(v) keep their existing snapshot shape.
    if (!h.exemplars().empty()) {
      out += ",\"exemplars\":[";
      bool efirst = true;
      for (const auto& [bucket, ex] : h.exemplars()) {
        if (!efirst) out += ',';
        efirst = false;
        out += "{\"bucket\":" + format_number(static_cast<double>(bucket)) +
               ",\"value\":" + format_number(ex.value) +
               ",\"t_s\":" + format_number(ex.t_s) + ",\"session\":" +
               format_number(static_cast<double>(ex.session)) + "}";
      }
      out += ']';
    }
    out += "}";
  }
  out += "}}";
  return out;
}

namespace {

/// "api_requests_total{api=\"foo\"}" -> base "api_requests_total".
std::string base_name(const std::string& series) {
  const std::size_t brace = series.find('{');
  return brace == std::string::npos ? series : series.substr(0, brace);
}

/// Splice `extra` (e.g. quantile="0.5") into a series name's label set.
std::string with_label(const std::string& series, const std::string& extra) {
  const std::size_t brace = series.find('{');
  if (brace == std::string::npos) return series + "{" + extra + "}";
  std::string out = series;
  out.insert(out.size() - 1, "," + extra);
  return out;
}

}  // namespace

std::string Registry::to_prometheus() const {
  std::string out;
  std::string last_base;
  for (const auto& [name, c] : counters_) {
    const std::string base = base_name(name);
    if (base != last_base) {
      out += "# TYPE " + base + " counter\n";
      last_base = base;
    }
    out += name + " " + format_number(c.value()) + "\n";
  }
  last_base.clear();
  for (const auto& [name, g] : gauges_) {
    const std::string base = base_name(name);
    if (base != last_base) {
      out += "# TYPE " + base + " gauge\n";
      last_base = base;
    }
    out += name + " " + format_number(g.value()) + "\n";
  }
  last_base.clear();
  for (const auto& [name, h] : histograms_) {
    const std::string base = base_name(name);
    if (base != last_base) {
      out += "# TYPE " + base + " summary\n";
      last_base = base;
    }
    static constexpr struct {
      double q;
      const char* label;
    } kQuantiles[] = {{0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}};
    for (const auto& e : kQuantiles) {
      out += with_label(name, std::string("quantile=\"") + e.label + "\"") +
             " " + format_number(h.quantile(e.q)) + "\n";
    }
    const std::string labels = name.substr(base.size());
    out += base + "_sum" + labels + " " + format_number(h.sum()) + "\n";
    out += base + "_count" + labels + " " +
           format_number(static_cast<double>(h.count())) + "\n";
  }
  return out;
}

// --- Process-wide wall-clock metrics ---

namespace {

std::mutex& process_mu() {
  static std::mutex mu;
  return mu;
}

Registry& process_reg() {
  static Registry reg;
  return reg;
}

}  // namespace

void process_counter_add(const std::string& name, double v) {
  std::lock_guard<std::mutex> lock(process_mu());
  process_reg().counter(name).add(v);
}

void process_gauge_max(const std::string& name, double v) {
  std::lock_guard<std::mutex> lock(process_mu());
  process_reg().gauge(name).set_max(v);
}

void process_hist_record(const std::string& name, double v) {
  std::lock_guard<std::mutex> lock(process_mu());
  process_reg().histogram(name).record(v);
}

std::string process_to_json() {
  std::lock_guard<std::mutex> lock(process_mu());
  return process_reg().to_json();
}

void process_reset() {
  std::lock_guard<std::mutex> lock(process_mu());
  process_reg() = Registry();
}

#else  // !PSC_OBS

bool metrics_enabled() { return false; }
void set_metrics_enabled(bool) {}
bool trace_enabled() { return false; }
void set_trace_enabled(bool) {}

#endif  // PSC_OBS

}  // namespace psc::obs

// Smartphone power model (paper §5.3, Fig. 8).
//
// The paper measured a Galaxy S4 on a Monsoon power monitor: idle ~1000 mW
// (screen at full brightness), app foreground without video 1670 mW (WiFi)
// / 2160 mW (LTE) — the app refreshes the video list every 5 s, which on
// LTE keeps the radio in its expensive RRC-connected state; watching live
// or replay video costs the same; RTMP vs HLS differ little; and enabling
// chat jumps to 4170/4540 mW (slightly more than broadcasting), draining
// a full battery in ~2 h.
//
// The model is component-additive — base SoC + screen + app CPU + decode
// + render + camera/encode + chat churn — plus a radio state machine
// (active-per-byte, then a tail: short for WiFi PSM, long for LTE RRC)
// driven by the actual byte events of a simulated session.
#pragma once

#include <cstdint>

#include "util/units.h"

namespace psc::energy {

enum class Radio : std::uint8_t { Wifi, Lte };

struct RadioParams {
  double idle_mw = 25;
  double active_mw = 780;  // while bits are in flight
  double tail_mw = 180;    // PSM tail / RRC connected
  Duration tail = seconds(0.25);
  BitRate phy_rate = 25e6;  // effective over-the-air rate
};

RadioParams wifi_params();
RadioParams lte_params();

struct ComponentPowers {
  double base_mw = 345;          // SoC idle, sensors, misc
  double screen_mw = 655;        // full brightness (paper's setting)
  double app_foreground_mw = 440;  // UI + periodic list refresh CPU
  double decode_mw = 430;        // H.264 hardware decode path
  double render_mw = 230;        // video surface composition
  double camera_encode_mw = 1700;  // broadcasting: camera + encoder
  double chat_mw = 1880;         // chat: message churn, text rendering,
                                 // wakelocks — the Fig. 8 anomaly
};

/// Integrates power over a session from discrete component toggles and
/// network byte events. Events must be fed in nondecreasing time order.
class PowerIntegrator {
 public:
  PowerIntegrator(Radio radio, TimePoint start,
                  ComponentPowers components = {});

  void set_screen(TimePoint t, bool on);
  void set_app_foreground(TimePoint t, bool on);
  void set_decoding(TimePoint t, bool on);
  void set_chat(TimePoint t, bool on);
  void set_broadcasting(TimePoint t, bool on);

  /// `bytes` moved over the radio at time t (either direction).
  void on_network_bytes(TimePoint t, std::size_t bytes);

  /// Close the integration window and return average power in mW.
  double finish(TimePoint end);

  double energy_mj() const { return energy_mj_; }
  Radio radio() const { return radio_; }

 private:
  void advance(TimePoint t);
  double non_radio_power() const;
  double radio_power_between(TimePoint a, TimePoint b) const;  // avg mW

  Radio radio_;
  RadioParams rp_;
  ComponentPowers cp_;
  TimePoint start_;
  TimePoint last_;
  double energy_mj_ = 0;  // milliwatt-seconds

  bool screen_ = true;
  bool app_ = false;
  bool decoding_ = false;
  bool chat_ = false;
  bool broadcasting_ = false;

  // Radio occupancy: transfers serialize; tail follows the last one.
  TimePoint radio_busy_until_{};
};

/// Battery life estimate at a given average power (mAh at nominal 3.8 V,
/// matching the paper's "just over 2h" for the chat case on a 2600 mAh
/// Galaxy S4 battery).
double battery_hours(double avg_power_mw, double battery_mah = 2600,
                     double nominal_v = 3.8);

}  // namespace psc::energy

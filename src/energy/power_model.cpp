#include "energy/power_model.h"

#include <algorithm>

namespace psc::energy {

RadioParams wifi_params() {
  return RadioParams{25, 780, 180, seconds(0.25), 25e6};
}

RadioParams lte_params() {
  // LTE RRC-connected tail is long (~10 s on Galaxy-S4-era networks) and
  // expensive — the source of the WiFi/LTE gap in every Fig. 8 bar: the
  // app's 5-second list refresh keeps the radio permanently connected.
  return RadioParams{35, 1350, 700, seconds(10.0), 40e6};
}

PowerIntegrator::PowerIntegrator(Radio radio, TimePoint start,
                                 ComponentPowers components)
    : radio_(radio),
      rp_(radio == Radio::Wifi ? wifi_params() : lte_params()),
      cp_(components),
      start_(start),
      last_(start),
      // Start outside any tail window: a radio that never transmitted
      // idles from t0.
      radio_busy_until_(start - rp_.tail) {}

double PowerIntegrator::non_radio_power() const {
  double p = cp_.base_mw;
  if (screen_) p += cp_.screen_mw;
  if (app_) p += cp_.app_foreground_mw;
  if (decoding_) p += cp_.decode_mw + cp_.render_mw;
  if (chat_) p += cp_.chat_mw;
  if (broadcasting_) p += cp_.camera_encode_mw;
  return p;
}

double PowerIntegrator::radio_power_between(TimePoint a, TimePoint b) const {
  if (b <= a) return 0;
  const double span = to_s(b - a);
  // Decompose [a,b] into active (before radio_busy_until_), tail
  // (tail window after busy end) and idle.
  const TimePoint busy_end = std::min(b, std::max(a, radio_busy_until_));
  const TimePoint tail_end =
      std::min(b, std::max(a, radio_busy_until_ + rp_.tail));
  const double active_s = to_s(busy_end - a);
  const double tail_s = to_s(tail_end - busy_end);
  const double idle_s = span - active_s - tail_s;
  return (active_s * rp_.active_mw + tail_s * rp_.tail_mw +
          idle_s * rp_.idle_mw) /
         span;
}

void PowerIntegrator::advance(TimePoint t) {
  if (t <= last_) return;
  const double span = to_s(t - last_);
  const double p = non_radio_power() + radio_power_between(last_, t);
  energy_mj_ += p * span;
  last_ = t;
}

void PowerIntegrator::set_screen(TimePoint t, bool on) {
  advance(t);
  screen_ = on;
}
void PowerIntegrator::set_app_foreground(TimePoint t, bool on) {
  advance(t);
  app_ = on;
}
void PowerIntegrator::set_decoding(TimePoint t, bool on) {
  advance(t);
  decoding_ = on;
}
void PowerIntegrator::set_chat(TimePoint t, bool on) {
  advance(t);
  chat_ = on;
}
void PowerIntegrator::set_broadcasting(TimePoint t, bool on) {
  advance(t);
  broadcasting_ = on;
}

void PowerIntegrator::on_network_bytes(TimePoint t, std::size_t bytes) {
  advance(t);
  const Duration airtime =
      transmit_time(static_cast<std::uint64_t>(bytes), rp_.phy_rate);
  // Transfers serialize on the radio; extend the busy window.
  const TimePoint begin = std::max(t, radio_busy_until_);
  radio_busy_until_ = begin + airtime;
}

double PowerIntegrator::finish(TimePoint end) {
  advance(end);
  const double span = to_s(end - start_);
  return span <= 0 ? 0 : energy_mj_ / span;
}

double battery_hours(double avg_power_mw, double battery_mah,
                     double nominal_v) {
  const double battery_mwh = battery_mah * nominal_v;
  return avg_power_mw <= 0 ? 0 : battery_mwh / avg_power_mw;
}

}  // namespace psc::energy

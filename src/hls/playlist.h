// HLS media playlists (M3U8): writer, parser, and the sliding live window
// an origin maintains for a live event.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/units.h"

namespace psc::hls {

struct SegmentRef {
  std::string uri;
  Duration duration{0};
  std::uint64_t sequence = 0;
  /// #EXT-X-DISCONTINUITY precedes this segment (encoder restart / splice).
  bool discontinuity = false;
};

/// Upper bound accepted for EXTINF / TARGETDURATION values. Real segments
/// are seconds long; rejecting anything past a day keeps hostile values
/// (1e300, inf, nan) out of downstream float->int casts.
constexpr double kMaxSegmentDurationS = 86400.0;

struct MediaPlaylist {
  int version = 3;
  Duration target_duration{4};
  std::uint64_t media_sequence = 0;
  bool ended = false;  // #EXT-X-ENDLIST present
  std::vector<SegmentRef> segments;
};

std::string write_m3u8(const MediaPlaylist& pl);
Result<MediaPlaylist> parse_m3u8(const std::string& text);

/// One rendition in a master playlist (#EXT-X-STREAM-INF).
struct VariantRef {
  std::string uri;             // media playlist URI
  double bandwidth_bps = 0;    // BANDWIDTH attribute
  int width = 0, height = 0;   // RESOLUTION attribute (0 = omitted)
};

std::string write_master_m3u8(const std::vector<VariantRef>& variants);
Result<std::vector<VariantRef>> parse_master_m3u8(const std::string& text);

/// The origin-side live playlist: a sliding window of the most recent
/// segments (media sequence number advances as old segments fall off).
class LivePlaylistWindow {
 public:
  explicit LivePlaylistWindow(std::size_t window_size = 6,
                              Duration target = seconds(4));

  void add_segment(std::string uri, Duration duration);
  void end_stream() { ended_ = true; }

  MediaPlaylist snapshot() const;
  std::uint64_t next_sequence() const { return next_seq_; }

 private:
  std::size_t window_size_;
  Duration target_;
  std::deque<SegmentRef> window_;
  std::uint64_t next_seq_ = 0;
  bool ended_ = false;
};

}  // namespace psc::hls

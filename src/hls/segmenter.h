// HLS segmenter: cuts a DTS-ordered sample feed into MPEG-TS segments at
// keyframe boundaries once the target duration is reached.
//
// The paper measured a modal segment duration of 3.6 s — 108 frames at
// 30 fps, i.e. three 36-frame GOPs — which is exactly what cutting at the
// first keyframe after 3.6 s produces with Periscope's encoder settings.
#pragma once

#include <optional>
#include <vector>

#include "media/types.h"
#include "mpegts/mpegts.h"
#include "util/buffer.h"
#include "util/units.h"

namespace psc::hls {

struct Segment {
  std::uint64_t sequence = 0;
  Duration duration{0};
  /// The packaged MPEG-TS bytes. Ref-counted: the edge cache, every HTTP
  /// response serving it and every capture recording it share this one
  /// buffer — the segment is packaged once per world and never copied.
  util::BufferSlice ts_data;
  /// DTS of the first video sample in the segment (origin timeline).
  Duration start_dts{0};
};

class Segmenter {
 public:
  explicit Segmenter(Duration target = seconds(3.6));

  /// Push the next sample; returns a completed segment when this sample's
  /// keyframe closed one.
  std::optional<Segment> push(const media::MediaSample& sample);

  /// Flush the final partial segment at end of stream.
  std::optional<Segment> flush();

  /// Optional arena: completed segments adopt their buffer into it so
  /// the block is pooled for reuse once the last reference drops.
  void set_arena(util::BufferArena* arena) { arena_ = arena; }

  /// Drop the open partial segment and its buffer (retirement path).
  void discard() {
    current_ = ByteWriter{};
    open_ = false;
  }

  Duration target() const { return target_; }

 private:
  void open_segment(const media::MediaSample& first);
  Segment close_segment(Duration end_dts);

  Duration target_;
  util::BufferArena* arena_ = nullptr;
  mpegts::TsMuxer muxer_;
  ByteWriter current_;
  bool open_ = false;
  Duration seg_start_dts_{0};
  Duration last_video_dts_{0};
  Duration frame_period_{1.0 / 30.0};
  std::uint64_t next_seq_ = 0;
};

}  // namespace psc::hls

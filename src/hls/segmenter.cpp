#include "hls/segmenter.h"

namespace psc::hls {

Segmenter::Segmenter(Duration target) : target_(target) {}

void Segmenter::open_segment(const media::MediaSample& first) {
  if (arena_ != nullptr && current_.size() == 0) {
    // Back the writer with a pooled buffer: once the previous segment's
    // last reference drops, its storage cycles back through the arena.
    current_ = ByteWriter(arena_->obtain(0));
  }
  muxer_.psi_into(current_);
  open_ = true;
  seg_start_dts_ = first.dts;
  last_video_dts_ = first.dts;
}

Segment Segmenter::close_segment(Duration end_dts) {
  Segment seg;
  seg.sequence = next_seq_++;
  seg.start_dts = seg_start_dts_;
  seg.duration = end_dts - seg_start_dts_;
  seg.ts_data = arena_ != nullptr ? arena_->adopt(current_.take())
                                  : util::BufferSlice(current_.take());
  open_ = false;
  return seg;
}

std::optional<Segment> Segmenter::push(const media::MediaSample& sample) {
  std::optional<Segment> completed;
  const bool video = sample.kind == media::SampleKind::Video;

  // Epsilon guards the exact-boundary case: a keyframe landing precisely
  // at the target (e.g. 108 frames at 30 fps = 3.6 s) must close the
  // segment despite floating-point rounding in the DTS arithmetic.
  if (open_ && video && sample.keyframe &&
      sample.dts - seg_start_dts_ >= target_ - micros(1)) {
    completed = close_segment(sample.dts);
  }
  if (!open_) {
    // Segments must start on a keyframe so they are independently
    // decodable; leading non-keyframe samples are dropped (only happens
    // at stream start when joining mid-GOP).
    if (!(video && sample.keyframe)) return completed;
    open_segment(sample);
  }
  if (video) last_video_dts_ = sample.dts;
  muxer_.mux_sample_into(current_, sample);
  return completed;
}

std::optional<Segment> Segmenter::flush() {
  if (!open_ || current_.size() == 0) return std::nullopt;
  return close_segment(last_video_dts_ + frame_period_);
}

}  // namespace psc::hls

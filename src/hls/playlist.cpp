#include "hls/playlist.h"

#include <cmath>
#include <cstdlib>
#include <optional>

#include "util/strings.h"

namespace psc::hls {

namespace {

/// Parse a duration attribute value. Playlists come from the network, so
/// reject anything that is not a finite, non-negative, sane number of
/// seconds — "inf", "nan" and 1e300 all parse under atof() and then blow
/// up the float->int casts in write_m3u8().
std::optional<double> parse_duration_s(const char* text) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text) return std::nullopt;
  if (!std::isfinite(v) || v < 0.0 || v > kMaxSegmentDurationS) {
    return std::nullopt;
  }
  return v;
}

}  // namespace

std::string write_m3u8(const MediaPlaylist& pl) {
  std::string out = "#EXTM3U\n";
  out += strf("#EXT-X-VERSION:%d\n", pl.version);
  out += strf("#EXT-X-TARGETDURATION:%d\n",
              static_cast<int>(std::ceil(to_s(pl.target_duration))));
  out += strf("#EXT-X-MEDIA-SEQUENCE:%llu\n",
              static_cast<unsigned long long>(pl.media_sequence));
  for (const SegmentRef& seg : pl.segments) {
    if (seg.discontinuity) out += "#EXT-X-DISCONTINUITY\n";
    out += strf("#EXTINF:%.3f,\n", to_s(seg.duration));
    out += seg.uri + "\n";
  }
  if (pl.ended) out += "#EXT-X-ENDLIST\n";
  return out;
}

Result<MediaPlaylist> parse_m3u8(const std::string& text) {
  MediaPlaylist pl;
  pl.target_duration = seconds(0);
  const std::vector<std::string> lines = split(text, '\n');
  if (lines.empty() || trim(lines[0]) != "#EXTM3U") {
    return make_error("m3u8", "missing #EXTM3U header");
  }
  Duration pending_duration{-1};
  bool pending_discontinuity = false;
  std::uint64_t seq = 0;
  bool seq_set = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string line{trim(lines[i])};
    if (line.empty()) continue;
    if (starts_with(line, "#EXT-X-VERSION:")) {
      const long v = std::strtol(line.c_str() + 15, nullptr, 10);
      if (v < 1 || v > 1000) {
        return make_error("m3u8", "unreasonable #EXT-X-VERSION");
      }
      pl.version = static_cast<int>(v);
    } else if (starts_with(line, "#EXT-X-TARGETDURATION:")) {
      const auto d = parse_duration_s(line.c_str() + 22);
      if (!d) return make_error("m3u8", "bad #EXT-X-TARGETDURATION value");
      pl.target_duration = seconds(*d);
    } else if (starts_with(line, "#EXT-X-MEDIA-SEQUENCE:")) {
      char* end = nullptr;
      const char* digits = line.c_str() + 22;
      const unsigned long long v = std::strtoull(digits, &end, 10);
      if (end == digits || *digits == '-') {
        return make_error("m3u8", "bad #EXT-X-MEDIA-SEQUENCE value");
      }
      pl.media_sequence = v;
      seq = pl.media_sequence;
      seq_set = true;
    } else if (starts_with(line, "#EXTINF:")) {
      const auto d = parse_duration_s(line.c_str() + 8);
      if (!d) return make_error("m3u8", "bad #EXTINF duration");
      pending_duration = seconds(*d);
    } else if (starts_with(line, "#EXT-X-DISCONTINUITY")) {
      pending_discontinuity = true;
    } else if (starts_with(line, "#EXT-X-ENDLIST")) {
      pl.ended = true;
    } else if (!starts_with(line, "#")) {
      if (pending_duration.count() < 0) {
        return make_error("m3u8", "segment URI without #EXTINF");
      }
      SegmentRef seg;
      seg.uri = line;
      seg.duration = pending_duration;
      seg.sequence = seq_set ? seq : pl.media_sequence;
      seg.discontinuity = pending_discontinuity;
      ++seq;
      seq_set = true;
      pl.segments.push_back(std::move(seg));
      pending_duration = seconds(-1);
      pending_discontinuity = false;
    }
  }
  return pl;
}

std::string write_master_m3u8(const std::vector<VariantRef>& variants) {
  std::string out = "#EXTM3U\n";
  for (const VariantRef& v : variants) {
    out += strf("#EXT-X-STREAM-INF:BANDWIDTH=%.0f", v.bandwidth_bps);
    if (v.width > 0 && v.height > 0) {
      out += strf(",RESOLUTION=%dx%d", v.width, v.height);
    }
    out += "\n" + v.uri + "\n";
  }
  return out;
}

Result<std::vector<VariantRef>> parse_master_m3u8(const std::string& text) {
  const std::vector<std::string> lines = split(text, '\n');
  if (lines.empty() || trim(lines[0]) != "#EXTM3U") {
    return make_error("m3u8", "missing #EXTM3U header");
  }
  std::vector<VariantRef> out;
  std::optional<VariantRef> pending;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string line{trim(lines[i])};
    if (line.empty()) continue;
    if (starts_with(line, "#EXT-X-STREAM-INF:")) {
      VariantRef v;
      for (const std::string& attr : split(line.substr(18), ',')) {
        if (starts_with(attr, "BANDWIDTH=")) {
          char* end = nullptr;
          const double bw = std::strtod(attr.c_str() + 10, &end);
          if (end == attr.c_str() + 10 || !std::isfinite(bw) || bw < 0.0 ||
              bw > 1e12) {
            return make_error("m3u8", "bad BANDWIDTH value");
          }
          v.bandwidth_bps = bw;
        } else if (starts_with(attr, "RESOLUTION=")) {
          const auto dims = split(attr.substr(11), 'x');
          if (dims.size() == 2) {
            const long w = std::strtol(dims[0].c_str(), nullptr, 10);
            const long h = std::strtol(dims[1].c_str(), nullptr, 10);
            if (w > 0 && w <= 100000 && h > 0 && h <= 100000) {
              v.width = static_cast<int>(w);
              v.height = static_cast<int>(h);
            }
          }
        }
      }
      pending = v;
    } else if (!starts_with(line, "#")) {
      if (!pending) {
        return make_error("m3u8", "variant URI without #EXT-X-STREAM-INF");
      }
      pending->uri = line;
      out.push_back(*pending);
      pending.reset();
    }
  }
  return out;
}

LivePlaylistWindow::LivePlaylistWindow(std::size_t window_size,
                                       Duration target)
    : window_size_(window_size), target_(target) {}

void LivePlaylistWindow::add_segment(std::string uri, Duration duration) {
  SegmentRef seg;
  seg.uri = std::move(uri);
  seg.duration = duration;
  seg.sequence = next_seq_++;
  window_.push_back(std::move(seg));
  while (window_.size() > window_size_) window_.pop_front();
}

MediaPlaylist LivePlaylistWindow::snapshot() const {
  MediaPlaylist pl;
  pl.target_duration = target_;
  pl.ended = ended_;
  pl.media_sequence = window_.empty() ? next_seq_ : window_.front().sequence;
  pl.segments.assign(window_.begin(), window_.end());
  return pl;
}

}  // namespace psc::hls

#include "gateway/sim_bridge.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace psc::gateway {

namespace {

double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SimBridge::SimBridge(sim::Simulation& sim, WallClock clock)
    : sim_(sim), clock_(clock ? std::move(clock) : WallClock(steady_now_s)) {
  t0_ = clock_();
  sim_start_s_ = to_s(sim_.now());
}

TimePoint SimBridge::deadline() const {
  return time_at(sim_start_s_ + wall_elapsed_s());
}

void SimBridge::advance() {
  const TimePoint target = deadline();
  // run_until leaves the clock at min(target, last event time) and never
  // past target — the "sim never ahead of wall" invariant is the kernel's
  // own contract; the bridge just computes the target.
  if (target > sim_.now()) sim_.run_until(target);
}

int SimBridge::poll_timeout_ms(int cap_ms) const {
  const auto due = sim_.next_due_bound();
  if (!due) return cap_ms;
  const double wall_at_due = t0_ + (to_s(*due) - sim_start_s_);
  const double wait_s = wall_at_due - clock_();
  if (wait_s <= 0) return 0;
  const double ms = std::ceil(wait_s * 1e3);
  return std::min(cap_ms, static_cast<int>(std::max(1.0, ms)));
}

}  // namespace psc::gateway

#include "gateway/gateway.h"

#include <string_view>
#include <utility>

namespace psc::gateway {

namespace {

constexpr const char* kContentTypeM3u8 = "application/vnd.apple.mpegurl";
constexpr const char* kContentTypeTs = "video/mp2t";
constexpr const char* kContentTypeJson = "application/json";
constexpr const char* kContentTypeText = "text/plain";

util::BufferSlice text_slice(std::string_view text) {
  return util::BufferSlice(to_bytes(text));
}

bool wants_close(const http::Request& req) {
  auto it = req.headers.find("Connection");
  if (it == req.headers.end()) it = req.headers.find("connection");
  return it != req.headers.end() && it->second == "close";
}

}  // namespace

Gateway::Gateway(const GatewayConfig& cfg, SimBridge::WallClock clock)
    : cfg_(cfg),
      bridge_(sim_, std::move(clock)),
      origin_(cfg.seed),
      store_(SegmentStoreConfig{cfg.segment_target, cfg.playlist_window,
                                cfg.retain_extra}) {
  store_.set_arena(&arena_);
  store_.set_metrics(&metrics_);

  service::MediaOrigin::StreamHooks hooks;
  hooks.on_publish_start = [this](const std::string& stream, TimePoint now) {
    store_.on_publish_start(stream, now);
  };
  hooks.on_sample = [this](const std::string& stream,
                           const media::MediaSample& sample, TimePoint now) {
    store_.on_sample(stream, sample, now);
  };
  hooks.on_publish_end = [this](const std::string& stream, TimePoint now) {
    store_.on_publish_end(stream, now);
  };
  origin_.set_stream_hooks(std::move(hooks));

  if (cfg_.enable_api) {
    service::WorldConfig wcfg;
    wcfg.target_concurrent = cfg_.world_concurrent;
    world_ = std::make_unique<service::World>(sim_, wcfg, cfg_.seed);
    servers_ = std::make_unique<service::MediaServerPool>(cfg_.seed);
    api_ = std::make_unique<service::ApiServer>(*world_, *servers_,
                                                service::ApiConfig{});
    world_->start(/*prepopulate=*/true);
  }
}

Gateway::~Gateway() {
  // Tear sockets down while origin_/store_/the connection maps are still
  // alive: on_close handlers touch them.
  loop_.close_all();
  loop_.stop_listening();
}

Status Gateway::start() {
  ConnectionHandlers rtmp;
  rtmp.on_data = [this](Connection& c, BytesView d) { on_rtmp_data(c, d); };
  rtmp.on_close = [this](Connection& c) { on_rtmp_close(c); };
  auto rtmp_port = loop_.listen(cfg_.rtmp_port, std::move(rtmp),
                                [this](Connection& c) { on_rtmp_accept(c); });
  if (!rtmp_port.ok()) return rtmp_port.error();
  rtmp_port_ = rtmp_port.value();

  ConnectionHandlers http;
  http.on_data = [this](Connection& c, BytesView d) { on_http_data(c, d); };
  http.on_close = [this](Connection& c) { on_http_close(c); };
  auto http_port = loop_.listen(cfg_.http_port, std::move(http),
                                [this](Connection& c) { on_http_accept(c); });
  if (!http_port.ok()) return http_port.error();
  http_port_ = http_port.value();
  return Status::ok_status();
}

// ---- RTMP side ---------------------------------------------------------

void Gateway::on_rtmp_accept(Connection& c) {
  c.set_write_cap(cfg_.write_cap);
  const int id = origin_.open_connection();
  c.user_tag = static_cast<std::uint64_t>(id);
  rtmp_conns_[id] = &c;
  ++rtmp_accepted_;
  metrics_.counter("gateway_rtmp_connections_total").add();
}

void Gateway::on_rtmp_data(Connection& c, BytesView data) {
  const int id = static_cast<int>(c.user_tag);
  origin_.advance_to(bridge_.now());
  const Status s = origin_.on_input(id, data);
  if (!s.ok()) {
    metrics_.counter("gateway_rtmp_protocol_errors_total").add();
    pump_rtmp_output();  // let any error reply reach the wire first
    c.close_after_flush();
    c.close();
    return;
  }
  pump_rtmp_output();
}

void Gateway::pump_rtmp_output() {
  for (auto& [id, conn] : rtmp_conns_) {
    if (conn->closing()) continue;
    while (origin_.has_output(id)) {
      Bytes out = origin_.take_output(id);
      if (!conn->send(util::BufferSlice(std::move(out)))) break;
    }
  }
}

void Gateway::on_rtmp_close(Connection& c) {
  const int id = static_cast<int>(c.user_tag);
  origin_.advance_to(bridge_.now());
  origin_.close_connection(id);  // fires on_publish_end for publishers
  rtmp_conns_.erase(id);
}

// ---- HTTP side ---------------------------------------------------------

void Gateway::on_http_accept(Connection& c) {
  c.set_write_cap(cfg_.write_cap);
  http_conns_[c.id()].conn = &c;
  ++http_accepted_;
  metrics_.counter("gateway_http_connections_total").add();
}

void Gateway::on_http_data(Connection& c, BytesView data) {
  auto it = http_conns_.find(c.id());
  if (it == http_conns_.end()) return;
  HttpConn& hc = it->second;
  if (hc.parser.failed()) return;  // already rejected; draining the close
  const Status s = hc.parser.push(data);
  for (http::Request& req : hc.parser.take_requests()) {
    handle_http(c, req);
    if (c.closing()) return;
  }
  if (!s.ok()) {
    metrics_.counter("gateway_http_parse_errors_total").add();
    send_response(c, 400, kContentTypeText,
                  text_slice("bad request\n"),
                  /*keep_alive=*/false);
  }
}

void Gateway::on_http_close(Connection& c) { http_conns_.erase(c.id()); }

void Gateway::handle_http(Connection& c, const http::Request& req) {
  ++http_requests_;
  metrics_.counter("gateway_http_requests_total").add();
  const bool keep_alive = !wants_close(req);

  if (req.method == "POST" && req.path.rfind("/api/v2/", 0) == 0) {
    if (api_ == nullptr) {
      send_response(c, 404, kContentTypeText,
                    text_slice("api disabled\n"),
                    keep_alive);
      return;
    }
    http::Response resp = api_->handle(req, bridge_.now());
    auto ct = resp.headers.find("Content-Type");
    send_response(c, resp.status,
                  ct == resp.headers.end() ? kContentTypeJson : ct->second,
                  std::move(resp.body), keep_alive);
    return;
  }

  if (req.method != "GET") {
    send_response(c, 404, kContentTypeText,
                  text_slice("not found\n"),
                  keep_alive);
    return;
  }

  if (req.path == "/healthz") {
    send_response(c, 200, kContentTypeText,
                  text_slice("ok\n"), keep_alive);
    return;
  }
  if (req.path == "/metrics.json") {
    send_response(c, 200, kContentTypeJson,
                  text_slice(metrics_.to_json()),
                  keep_alive);
    return;
  }
  if (req.path == "/streams") {
    std::string body = "{\"streams\":[";
    bool first = true;
    for (const std::string& name : store_.stream_names()) {
      const SegmentStore::Stream* st = store_.find_stream(name);
      if (!first) body += ',';
      first = false;
      body += "{\"name\":\"" + name +
              "\",\"segments\":" + std::to_string(st->segments.size()) +
              ",\"ended\":" + (st->ended ? "true" : "false") + "}";
    }
    body += "]}";
    send_response(c, 200, kContentTypeJson,
                  text_slice(body), keep_alive);
    return;
  }

  // /hls/<stream>/{master.m3u8, media.m3u8, seg_<N>.ts}
  if (req.path.rfind("/hls/", 0) == 0) {
    const std::size_t stream_begin = 5;
    const std::size_t slash = req.path.find('/', stream_begin);
    if (slash != std::string::npos) {
      const std::string stream = req.path.substr(stream_begin,
                                                 slash - stream_begin);
      const std::string file = req.path.substr(slash + 1);
      if (file == "master.m3u8" || file == "media.m3u8") {
        const std::string text = file == "master.m3u8"
                                     ? store_.master_playlist(stream)
                                     : store_.media_playlist(stream);
        if (!text.empty()) {
          send_response(c, 200, kContentTypeM3u8,
                        text_slice(text),
                        keep_alive);
          return;
        }
      } else if (const SegmentStore::StoredSegment* seg =
                     store_.find_segment(stream, file)) {
        // Zero-copy: the response body is a refcount bump on the same
        // arena block the segmenter committed.
        ++segments_served_;
        metrics_.counter("gateway_segments_served_total").add();
        send_response(c, 200, kContentTypeTs, seg->segment.ts_data,
                      keep_alive);
        return;
      }
    }
  }

  send_response(c, 404, kContentTypeText,
                text_slice("not found\n"),
                keep_alive);
}

void Gateway::send_response(Connection& c, int status,
                            const std::string& content_type,
                            util::BufferSlice body, bool keep_alive) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     http::reason_for(status) + "\r\n";
  head += "Content-Type: " + content_type + "\r\n";
  head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  head += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  head += "\r\n";
  bytes_served_ += head.size() + body.size();
  metrics_.counter("gateway_http_bytes_total")
      .add(static_cast<double>(head.size() + body.size()));
  if (!c.send(util::BufferSlice(to_bytes(head)))) return;
  if (!body.empty() && !c.send(std::move(body))) return;
  if (!keep_alive) c.close_after_flush();
}

// ---- loop --------------------------------------------------------------

int Gateway::poll_once(int cap_ms) {
  if (cap_ms < 0) cap_ms = cfg_.poll_cap_ms;
  bridge_.advance();
  const int n = loop_.poll(bridge_.poll_timeout_ms(cap_ms));
  bridge_.advance();
  return n;
}

void Gateway::run(const std::function<bool()>& keep_running) {
  while (keep_running() && !shutdown_) poll_once();
  request_shutdown();
  const double drain_start = bridge_.wall_elapsed_s();
  while (!drained() && bridge_.wall_elapsed_s() - drain_start < 5.0) {
    poll_once(5);
  }
  loop_.close_all();
}

void Gateway::request_shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  loop_.stop_listening();
  bridge_.advance();
  // Flush in-flight segments before dropping publishers: the open partial
  // segment of every live stream commits whole (no torn TS output) and
  // the playlists gain ENDLIST.
  store_.flush_all(bridge_.now());
  for (auto& [id, conn] : rtmp_conns_) conn->close();
  for (auto& [id, hc] : http_conns_) {
    if (hc.conn->buffered() > 0) {
      hc.conn->close_after_flush();
    } else {
      hc.conn->close();
    }
  }
}

}  // namespace psc::gateway

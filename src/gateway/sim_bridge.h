// SimBridge: paces a sim::Simulation against the wall clock.
//
// The interop gateway runs the *same* service objects the deterministic
// campaigns use (MediaOrigin, ApiServer, the HLS segmenter), but its peers
// are real sockets living on wall-clock time. The bridge maps the two
// timelines: sim t=0 is pinned to the wall instant the bridge is created,
// and advance() runs the simulation up to `wall_now - t0` — never past it.
// Between epoll waits the gateway therefore sees a simulation whose clock
// trails the wall clock by at most one poll interval, while inside the
// simulation every event still fires in exact (when, seq) order, identical
// to a pure-sim run of the same schedule (tests/test_gateway_bridge.cpp
// asserts both properties).
//
// The wall clock is injected as a callable so tests can drive a manual
// clock; the default reads std::chrono::steady_clock.
#pragma once

#include <functional>

#include "sim/simulation.h"
#include "util/units.h"

namespace psc::gateway {

class SimBridge {
 public:
  /// Monotonic wall-clock seconds. The absolute origin is irrelevant —
  /// only differences are used.
  using WallClock = std::function<double()>;

  /// Pins sim-time zero to the current wall instant. `sim.now()` need not
  /// be zero: the bridge maps wall elapsed onto `sim_start + elapsed`.
  explicit SimBridge(sim::Simulation& sim, WallClock clock = {});

  /// Run the simulation up to the current wall-mapped deadline. The sim
  /// clock never ends up ahead of `deadline()`; events due at or before it
  /// fire in (when, seq) order.
  void advance();

  /// The sim time corresponding to "now" on the wall.
  TimePoint deadline() const;

  /// Wall seconds since construction.
  double wall_elapsed_s() const { return clock_() - t0_; }

  /// Milliseconds a poller may sleep before the next sim event could be
  /// due, clamped to [0, cap_ms]. cap_ms when nothing is pending (socket
  /// readiness is the only other wake-up source, and the cap bounds how
  /// stale the sim clock can get while idle).
  int poll_timeout_ms(int cap_ms) const;

  TimePoint now() const { return sim_.now(); }
  sim::Simulation& sim() { return sim_; }

 private:
  sim::Simulation& sim_;
  WallClock clock_;
  double t0_ = 0;
  double sim_start_s_ = 0;
};

}  // namespace psc::gateway

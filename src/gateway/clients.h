// Loopback peers for the interop gateway, plus the sans-io differential
// reference.
//
// PublishClient speaks real RTMP over a real (non-blocking) TCP socket —
// handshake, connect/createStream/publish, FLV-tagged media — by wrapping
// the same sans-io rtmp::PublisherSession the simulated broadcaster uses.
// HlsFetchClient issues HTTP GETs and frames responses by Content-Length.
// Both are single-threaded step() pumps so a test can interleave them with
// Gateway::poll_once() on one thread (deterministic, ASan-friendly).
//
// synthetic_frames() + sim_reference_segments() are the two halves of the
// differential contract: the same encoded frames pushed through a pure
// sans-io RTMP loopback (PublisherSession -> MediaOrigin -> Segmenter, no
// sockets anywhere) must yield TS segments byte-identical to what the
// gateway serves after the frames travelled a real socket.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "http/http.h"
#include "hls/segmenter.h"
#include "media/encoder.h"
#include "media/types.h"
#include "rtmp/session.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/units.h"

namespace psc::gateway {

/// Non-blocking loopback socket pump shared by both clients.
class SocketPump {
 public:
  SocketPump() = default;
  ~SocketPump();
  SocketPump(const SocketPump&) = delete;
  SocketPump& operator=(const SocketPump&) = delete;

  Status connect(std::uint16_t port);
  /// Queue bytes for the peer (sent as the socket accepts them).
  void queue(Bytes data);
  /// One pump turn: finish connecting, flush queued bytes, read whatever
  /// is available into `received`. Returns false once the socket is
  /// closed/failed (look at error() for why).
  bool step(Bytes& received);
  void close();

  bool connected() const { return connected_; }
  bool closed() const { return fd_ < 0; }
  bool peer_closed() const { return peer_closed_; }
  std::size_t pending() const { return pending_.size() - pending_off_; }

 private:
  int fd_ = -1;
  bool connecting_ = false;
  bool connected_ = false;
  bool peer_closed_ = false;
  Bytes pending_;
  std::size_t pending_off_ = 0;
};

/// Publishes a synthetic stream to a real RTMP port.
class PublishClient {
 public:
  PublishClient(std::string app, std::string stream_key, std::uint64_t seed)
      : session_(std::move(app), std::move(stream_key), seed) {}

  Status connect(std::uint16_t port);
  /// One pump turn; returns false once the transport is gone.
  bool step();
  bool publishing() const { return session_.publishing(); }

  void send_avc_config(const media::Sps& sps, const media::Pps& pps) {
    session_.send_avc_config(sps, pps);
  }
  void send_sample(const media::MediaSample& sample) {
    session_.send_sample(sample);
  }
  /// Close the socket (the gateway sees an orderly publisher departure).
  void close() { pump_.close(); }
  bool closed() const { return pump_.closed(); }
  /// Bytes queued toward the wire but not yet accepted by the kernel
  /// (session-internal output not yet pumped counts too).
  std::size_t pending() const {
    return pump_.pending() + (session_.has_output() ? 1 : 0);
  }

 private:
  rtmp::PublisherSession session_;
  SocketPump pump_;
};

/// Fetches one HTTP resource per request over a keep-alive connection.
class HlsFetchClient {
 public:
  Status connect(std::uint16_t port);
  /// Issue GET `path` (the previous response must have been taken).
  void get(const std::string& path);
  /// Issue an arbitrary request (POST /api/v2/* bridging and friends).
  void request(const http::Request& req);
  /// One pump turn; returns false once the transport is gone.
  bool step();
  /// A complete response is ready.
  bool done() const { return response_.has_value(); }
  http::Response take_response();
  void close() { pump_.close(); }
  bool closed() const { return pump_.closed(); }

 private:
  SocketPump pump_;
  Bytes inbuf_;
  std::optional<http::Response> response_;
};

/// Deterministic synthetic media: one encoded video stream (the encoder
/// the campaigns use) ready to publish.
struct SyntheticMedia {
  media::Sps sps;
  media::Pps pps;
  std::vector<media::MediaSample> samples;
};
SyntheticMedia synthetic_frames(std::uint64_t seed, int frames);

/// The sim-only pipeline: push `media` through a sans-io RTMP loopback
/// into a MediaOrigin whose stream hooks feed an hls::Segmenter — the
/// exact component chain the gateway hosts, minus every socket. Returns
/// the committed segments (flush included).
std::vector<hls::Segment> sim_reference_segments(const SyntheticMedia& media,
                                                 const std::string& stream_key,
                                                 Duration segment_target,
                                                 std::uint64_t seed);

}  // namespace psc::gateway

// Per-stream HLS packaging state for the interop gateway.
//
// The store is the sim-side segmenter pipeline behind the HTTP listener:
// published samples (Annex-B video / ADTS audio, exactly what the
// MediaOrigin fan-out path carries) run through the same hls::Segmenter
// the deterministic campaigns use, and completed segments land in an
// arena-backed window that HTTP responses serve zero-copy.
//
// Torn-segment freedom is structural: only whole segments returned by
// Segmenter::push()/flush() are ever committed to the window — a shutdown
// mid-publish flushes the open partial segment through the same
// close_segment path, so every stored `ts_data` is a whole number of
// 188-byte TS packets and demuxes cleanly (pinned by
// GatewayLifecycle.MidPublishShutdownLeavesNoTornSegment).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "hls/playlist.h"
#include "hls/segmenter.h"
#include "media/types.h"
#include "obs/metrics.h"
#include "util/buffer.h"
#include "util/units.h"

namespace psc::gateway {

struct SegmentStoreConfig {
  Duration segment_target = seconds(3.6);
  std::size_t playlist_window = 6;
  /// Segments retained per stream beyond the playlist window (a fetcher
  /// holding a stale playlist can still resolve recently expired URIs).
  std::size_t retain_extra = 4;
  /// BANDWIDTH advertised for the single rendition in the master playlist.
  double nominal_bandwidth_bps = 400e3;
};

class SegmentStore {
 public:
  explicit SegmentStore(const SegmentStoreConfig& cfg) : cfg_(cfg) {}

  /// Arena backing segment buffers (nullptr = plain heap).
  void set_arena(util::BufferArena* arena) { arena_ = arena; }
  /// Metric sink (nullptr = off).
  void set_metrics(obs::Registry* reg);

  // --- ingest (driven by MediaOrigin stream hooks) ---
  void on_publish_start(const std::string& stream, TimePoint now);
  void on_sample(const std::string& stream, const media::MediaSample& sample,
                 TimePoint now);
  /// Publisher left (or the gateway is shutting down): flush the open
  /// partial segment and mark the playlist ENDLIST.
  void on_publish_end(const std::string& stream, TimePoint now);
  /// Flush every live stream (graceful-shutdown path).
  void flush_all(TimePoint now);

  // --- serving ---
  struct StoredSegment {
    hls::Segment segment;
    TimePoint stored_at{};
  };
  struct Stream {
    hls::Segmenter segmenter;
    hls::LivePlaylistWindow playlist;
    std::deque<StoredSegment> segments;
    TimePoint publish_started_at{};
    bool ended = false;
    bool saw_first_segment = false;

    Stream(Duration target, std::size_t window)
        : segmenter(target), playlist(window, target) {}
  };

  const Stream* find_stream(const std::string& stream) const;
  const StoredSegment* find_segment(const std::string& stream,
                                    const std::string& uri) const;
  /// Media playlist text ("" for an unknown stream).
  std::string media_playlist(const std::string& stream) const;
  /// Single-rendition master playlist text ("" for an unknown stream).
  std::string master_playlist(const std::string& stream) const;
  std::vector<std::string> stream_names() const;

  std::uint64_t segments_stored() const { return segments_stored_; }

 private:
  void commit(Stream& st, hls::Segment seg, TimePoint now);

  SegmentStoreConfig cfg_;
  util::BufferArena* arena_ = nullptr;
  std::map<std::string, Stream> streams_;
  std::uint64_t segments_stored_ = 0;
  obs::Counter* segments_total_ = nullptr;
  obs::Counter* publishes_total_ = nullptr;
  obs::Histogram* first_segment_latency_ = nullptr;
  obs::Histogram* segment_duration_ = nullptr;
};

}  // namespace psc::gateway

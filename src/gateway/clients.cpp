#include "gateway/clients.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "service/origin_server.h"
#include "util/rng.h"

namespace psc::gateway {

// ---- SocketPump --------------------------------------------------------

SocketPump::~SocketPump() { close(); }

Status SocketPump::connect(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return make_error("gateway_io", "socket failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const int rc =
      ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    close();
    return make_error("gateway_io",
                      std::string("connect: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  connecting_ = rc != 0;
  connected_ = rc == 0;
  return Status::ok_status();
}

void SocketPump::queue(Bytes data) {
  if (data.empty()) return;
  if (pending_off_ > 0) {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(pending_off_));
    pending_off_ = 0;
  }
  pending_.insert(pending_.end(), data.begin(), data.end());
}

bool SocketPump::step(Bytes& received) {
  if (fd_ < 0) return false;
  if (connecting_) {
    pollfd p{fd_, POLLOUT, 0};
    if (::poll(&p, 1, 0) > 0 && (p.revents & POLLOUT) != 0) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        close();
        return false;
      }
      connecting_ = false;
      connected_ = true;
    }
    if (connecting_) return true;  // not writable yet
  }
  while (pending_off_ < pending_.size()) {
    const ssize_t n = ::send(fd_, pending_.data() + pending_off_,
                             pending_.size() - pending_off_, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close();
      return false;
    }
    pending_off_ += static_cast<std::size_t>(n);
  }
  if (pending_off_ == pending_.size()) {
    pending_.clear();
    pending_off_ = 0;
  }
  std::uint8_t buf[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      received.insert(received.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      peer_closed_ = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close();
    return false;
  }
  return true;
}

void SocketPump::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  connecting_ = connected_ = false;
}

// ---- PublishClient -----------------------------------------------------

Status PublishClient::connect(std::uint16_t port) {
  return pump_.connect(port);
}

bool PublishClient::step() {
  if (session_.has_output()) pump_.queue(session_.take_output());
  Bytes in;
  if (!pump_.step(in)) return false;
  if (!in.empty() && !session_.on_input(in).ok()) {
    pump_.close();
    return false;
  }
  // The session may have replied (handshake echo, command responses).
  if (session_.has_output()) pump_.queue(session_.take_output());
  Bytes more;
  if (!pump_.step(more)) return false;
  if (!more.empty() && !session_.on_input(more).ok()) {
    pump_.close();
    return false;
  }
  return !pump_.peer_closed() || pump_.pending() > 0;
}

// ---- HlsFetchClient ----------------------------------------------------

Status HlsFetchClient::connect(std::uint16_t port) {
  return pump_.connect(port);
}

void HlsFetchClient::get(const std::string& path) {
  http::Request req;
  req.method = "GET";
  req.path = path;
  req.headers["Host"] = "gateway";
  request(req);
}

void HlsFetchClient::request(const http::Request& req) {
  response_.reset();
  pump_.queue(to_bytes(req.serialize()));
}

bool HlsFetchClient::step() {
  Bytes in;
  if (!pump_.step(in)) return false;
  if (!in.empty()) inbuf_.insert(inbuf_.end(), in.begin(), in.end());
  if (!response_.has_value()) {
    // Frame by Content-Length, then hand the complete message to the
    // regular parser.
    const std::string text(reinterpret_cast<const char*>(inbuf_.data()),
                           inbuf_.size());
    const std::size_t head_end = text.find("\r\n\r\n");
    if (head_end != std::string::npos) {
      std::size_t body_len = 0;
      const std::size_t cl = text.find("Content-Length:");
      if (cl != std::string::npos && cl < head_end) {
        body_len = static_cast<std::size_t>(
            std::strtoull(text.c_str() + cl + 15, nullptr, 10));
      }
      const std::size_t total = head_end + 4 + body_len;
      if (inbuf_.size() >= total) {
        auto parsed =
            http::Response::parse(BytesView(inbuf_.data(), total));
        if (parsed.ok()) response_ = std::move(parsed.value());
        inbuf_.erase(inbuf_.begin(),
                     inbuf_.begin() + static_cast<std::ptrdiff_t>(total));
        if (!parsed.ok()) {
          pump_.close();
          return false;
        }
      }
    }
  }
  return true;
}

http::Response HlsFetchClient::take_response() {
  http::Response r = std::move(*response_);
  response_.reset();
  return r;
}

// ---- differential reference -------------------------------------------

SyntheticMedia synthetic_frames(std::uint64_t seed, int frames) {
  SyntheticMedia out;
  media::VideoEncoder enc(media::VideoConfig{}, media::ContentModelConfig{},
                          0.0, Rng(seed));
  out.sps = enc.sps();
  out.pps = enc.pps();
  while (static_cast<int>(out.samples.size()) < frames) {
    if (auto s = enc.next_frame()) out.samples.push_back(std::move(*s));
  }
  return out;
}

std::vector<hls::Segment> sim_reference_segments(const SyntheticMedia& media,
                                                 const std::string& stream_key,
                                                 Duration segment_target,
                                                 std::uint64_t seed) {
  service::MediaOrigin origin(seed);
  hls::Segmenter segmenter(segment_target);
  std::vector<hls::Segment> out;

  service::MediaOrigin::StreamHooks hooks;
  hooks.on_sample = [&](const std::string&, const media::MediaSample& sample,
                        TimePoint) {
    if (auto seg = segmenter.push(sample)) out.push_back(std::move(*seg));
  };
  hooks.on_publish_end = [&](const std::string&, TimePoint) {
    if (auto seg = segmenter.flush()) out.push_back(std::move(*seg));
  };
  origin.set_stream_hooks(std::move(hooks));

  const int conn = origin.open_connection();
  rtmp::PublisherSession pub("live", stream_key, seed + 1);
  auto pump = [&] {
    for (int i = 0; i < 64; ++i) {
      bool any = false;
      if (pub.has_output()) {
        if (!origin.on_input(conn, pub.take_output()).ok()) return;
        any = true;
      }
      if (origin.has_output(conn)) {
        if (!pub.on_input(origin.take_output(conn)).ok()) return;
        any = true;
      }
      if (!any) return;
    }
  };
  pump();
  if (!pub.publishing()) return out;
  pub.send_avc_config(media.sps, media.pps);
  for (const media::MediaSample& s : media.samples) pub.send_sample(s);
  pump();
  origin.close_connection(conn);  // fires on_publish_end -> flush
  return out;
}

}  // namespace psc::gateway

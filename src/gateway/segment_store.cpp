#include "gateway/segment_store.h"

#include <utility>

namespace psc::gateway {

namespace {

std::string segment_uri(std::uint64_t sequence) {
  return "seg_" + std::to_string(sequence) + ".ts";
}

}  // namespace

void SegmentStore::set_metrics(obs::Registry* reg) {
  if (reg == nullptr) {
    segments_total_ = nullptr;
    publishes_total_ = nullptr;
    first_segment_latency_ = nullptr;
    segment_duration_ = nullptr;
    return;
  }
  segments_total_ = &reg->counter("gateway_segments_total");
  publishes_total_ = &reg->counter("gateway_publishes_total");
  first_segment_latency_ = &reg->histogram("gateway_first_segment_latency_s");
  segment_duration_ = &reg->histogram("gateway_segment_duration_s");
}

void SegmentStore::on_publish_start(const std::string& stream, TimePoint now) {
  auto [it, inserted] = streams_.try_emplace(stream, cfg_.segment_target,
                                             cfg_.playlist_window);
  if (!inserted) {
    // Re-publish of the same key: drop any stale partial; the playlist
    // window and sequence numbering continue across the restart.
    it->second.segmenter.discard();
    it->second.ended = false;
  }
  it->second.segmenter.set_arena(arena_);
  it->second.publish_started_at = now;
  it->second.saw_first_segment = false;
  if (publishes_total_ != nullptr) publishes_total_->add();
}

void SegmentStore::on_sample(const std::string& stream,
                             const media::MediaSample& sample, TimePoint now) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) return;
  if (auto seg = it->second.segmenter.push(sample)) {
    commit(it->second, std::move(*seg), now);
  }
}

void SegmentStore::on_publish_end(const std::string& stream, TimePoint now) {
  auto it = streams_.find(stream);
  if (it == streams_.end() || it->second.ended) return;
  if (auto seg = it->second.segmenter.flush()) {
    commit(it->second, std::move(*seg), now);
  }
  it->second.playlist.end_stream();
  it->second.ended = true;
}

void SegmentStore::flush_all(TimePoint now) {
  for (auto& [name, st] : streams_) {
    if (st.ended) continue;
    if (auto seg = st.segmenter.flush()) commit(st, std::move(*seg), now);
    st.playlist.end_stream();
    st.ended = true;
  }
}

void SegmentStore::commit(Stream& st, hls::Segment seg, TimePoint now) {
  st.playlist.add_segment(segment_uri(seg.sequence), seg.duration);
  if (!st.saw_first_segment) {
    st.saw_first_segment = true;
    if (first_segment_latency_ != nullptr) {
      first_segment_latency_->record(to_s(now - st.publish_started_at));
    }
  }
  if (segments_total_ != nullptr) segments_total_->add();
  if (segment_duration_ != nullptr) {
    segment_duration_->record(to_s(seg.duration));
  }
  ++segments_stored_;
  st.segments.push_back(StoredSegment{std::move(seg), now});
  const std::size_t cap = cfg_.playlist_window + cfg_.retain_extra;
  while (st.segments.size() > cap) st.segments.pop_front();
}

const SegmentStore::Stream* SegmentStore::find_stream(
    const std::string& stream) const {
  auto it = streams_.find(stream);
  return it == streams_.end() ? nullptr : &it->second;
}

const SegmentStore::StoredSegment* SegmentStore::find_segment(
    const std::string& stream, const std::string& uri) const {
  const Stream* st = find_stream(stream);
  if (st == nullptr) return nullptr;
  for (const StoredSegment& s : st->segments) {
    if (segment_uri(s.segment.sequence) == uri) return &s;
  }
  return nullptr;
}

std::string SegmentStore::media_playlist(const std::string& stream) const {
  const Stream* st = find_stream(stream);
  if (st == nullptr) return "";
  return hls::write_m3u8(st->playlist.snapshot());
}

std::string SegmentStore::master_playlist(const std::string& stream) const {
  if (find_stream(stream) == nullptr) return "";
  hls::VariantRef v;
  v.uri = "media.m3u8";
  v.bandwidth_bps = cfg_.nominal_bandwidth_bps;
  return hls::write_master_m3u8({v});
}

std::vector<std::string> SegmentStore::stream_names() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, st] : streams_) names.push_back(name);
  return names;
}

}  // namespace psc::gateway

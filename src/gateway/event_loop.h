// Single-threaded, level-triggered epoll event loop.
//
// One EventLoop hosts every socket of the interop gateway: listeners,
// accepted peers, and outbound client connections (the loopback probe and
// bench drivers reuse it). All sockets are non-blocking; reads are drained
// to EAGAIN on every readiness report, and writes go through a
// per-connection buffered writer — a deque of util::BufferSlice plus a
// head offset — so serving an arena-backed HLS segment queues a refcount
// bump, not a copy. EPOLLOUT interest is registered only while the queue
// is non-empty (the level-triggered idiom that avoids a busy loop).
//
// Back-pressure: each connection carries a write cap. A peer that stops
// draining (zero socket reads) accumulates queued slices only up to the
// cap; one more send marks the connection overflowed and the loop closes
// it — unbounded buffering is impossible by construction
// (tests/test_gateway_bridge.cpp pins this).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/buffer.h"
#include "util/bytes.h"
#include "util/result.h"

namespace psc::gateway {

class EventLoop;

/// One live socket. Owned by the loop; handlers receive a reference that
/// is valid only for the duration of the callback (the loop may destroy
/// the connection as soon as the callback returns).
class Connection {
 public:
  std::uint64_t id() const { return id_; }
  int fd() const { return fd_; }

  /// Queue bytes for transmission (refcount bump, no copy) and try to
  /// flush immediately. Returns false if the connection is closed or the
  /// queue would exceed the write cap (the connection is then marked
  /// overflowed and torn down after the handler returns).
  bool send(util::BufferSlice data);
  bool send_copy(BytesView data) {
    return send(util::BufferSlice::copy_of(data));
  }

  /// Bytes queued but not yet accepted by the kernel.
  std::size_t buffered() const { return buffered_; }

  /// Largest allowed backlog of un-flushed bytes (default 4 MiB).
  void set_write_cap(std::size_t cap) { write_cap_ = cap; }
  std::size_t write_cap() const { return write_cap_; }

  /// Close once the write queue drains (keep-alive=false responses).
  /// An already-empty queue closes at the next loop turn.
  void close_after_flush();

  /// Immediate close at the next loop turn (handlers must not destroy
  /// the connection object they were called with).
  void close();
  bool closing() const { return closing_ || overflowed_; }

  /// Free tag for the owner (e.g. the MediaOrigin connection id).
  std::uint64_t user_tag = 0;

 private:
  friend class EventLoop;
  Connection(EventLoop* loop, int fd, std::uint64_t id)
      : loop_(loop), fd_(fd), id_(id) {}

  /// Flush queued slices to the socket; returns false on a fatal error.
  bool flush();

  EventLoop* loop_;
  int fd_;
  std::uint64_t id_;
  std::deque<util::BufferSlice> outq_;
  std::size_t head_off_ = 0;  // bytes of outq_.front() already written
  std::size_t buffered_ = 0;
  std::size_t write_cap_ = 4u << 20;
  bool want_write_ = false;  // EPOLLOUT currently registered
  bool closing_ = false;
  bool close_after_flush_ = false;
  bool overflowed_ = false;
  bool connecting_ = false;  // outbound connect() still in progress
};

struct ConnectionHandlers {
  /// Bytes arrived. The view is valid only during the call.
  std::function<void(Connection&, BytesView)> on_data;
  /// Peer closed, I/O error, write-cap overflow, or loop shutdown. Fires
  /// exactly once, after which the Connection is destroyed.
  std::function<void(Connection&)> on_close;
  /// Outbound connection completed (or failed: on_close fires instead).
  std::function<void(Connection&)> on_connect;
};

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Listen on 127.0.0.1:`port` (0 = ephemeral). Returns the bound port.
  /// `on_accept` runs after the connection is registered; set per-
  /// connection state (handlers are chosen per listener).
  Result<std::uint16_t> listen(std::uint16_t port, ConnectionHandlers handlers,
                               std::function<void(Connection&)> on_accept);

  /// Non-blocking outbound connect to 127.0.0.1:`port`.
  Result<Connection*> connect(std::uint16_t port, ConnectionHandlers handlers);

  /// One epoll_wait + dispatch. Returns the number of epoll events
  /// handled (0 on timeout).
  int poll(int timeout_ms);

  /// Stop accepting new connections (listeners are closed; existing
  /// connections keep running).
  void stop_listening();

  /// Close every connection (on_close fires for each).
  void close_all();

  std::size_t connection_count() const { return conns_.size(); }
  bool listening() const { return !listeners_.empty(); }

  /// Sum of un-flushed bytes across all connections.
  std::size_t total_buffered() const;

 private:
  struct Listener {
    int fd;
    std::uint16_t port;
    ConnectionHandlers handlers;
    std::function<void(Connection&)> on_accept;
  };
  struct Entry {
    std::unique_ptr<Connection> conn;
    ConnectionHandlers handlers;
  };

  void accept_ready(Listener& l);
  void conn_ready(int fd, std::uint32_t events);
  void update_write_interest(Connection& c);
  void destroy(int fd);

  friend class Connection;

  int ep_ = -1;
  std::uint64_t next_id_ = 1;
  std::map<int, Listener> listeners_;
  std::map<int, Entry> conns_;
  std::vector<int> doomed_;  // fds to destroy after dispatch
  std::vector<std::uint8_t> readbuf_;
};

}  // namespace psc::gateway

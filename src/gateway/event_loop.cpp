#include "gateway/event_loop.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace psc::gateway {

namespace {

Error errno_error(const char* what) {
  return make_error("gateway_io",
                    std::string(what) + ": " + std::strerror(errno));
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in a{};
  a.sin_family = AF_INET;
  a.sin_port = htons(port);
  a.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return a;
}

}  // namespace

// ---- Connection --------------------------------------------------------

bool Connection::send(util::BufferSlice data) {
  if (closing_ || overflowed_ || data.empty()) return !closing_ && !overflowed_;
  if (buffered_ + data.size() > write_cap_) {
    // The peer stopped draining: cap the backlog and let the loop tear
    // the connection down instead of buffering without bound. The doomed
    // list matters here — a zero-drain peer never produces an epoll event
    // of its own, so the writer's send is the only chance to reap it.
    overflowed_ = true;
    loop_->doomed_.push_back(fd_);
    return false;
  }
  buffered_ += data.size();
  outq_.push_back(std::move(data));
  if (!connecting_ && !flush()) {
    closing_ = true;
    loop_->doomed_.push_back(fd_);
    return false;
  }
  if (closing_) {  // close_after_flush and the queue just drained
    loop_->doomed_.push_back(fd_);
    return true;
  }
  loop_->update_write_interest(*this);
  return true;
}

void Connection::close() {
  if (closing_) return;
  closing_ = true;
  loop_->doomed_.push_back(fd_);
}

void Connection::close_after_flush() {
  close_after_flush_ = true;
  // Nothing queued means no EPOLLOUT will ever fire to finish the close:
  // doom the connection now instead of idling forever.
  if (outq_.empty() && !closing_) {
    closing_ = true;
    loop_->doomed_.push_back(fd_);
  }
}

bool Connection::flush() {
  while (!outq_.empty()) {
    const util::BufferSlice& head = outq_.front();
    const std::size_t len = head.size() - head_off_;
    const ssize_t n =
        ::send(fd_, head.data() + head_off_, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    buffered_ -= static_cast<std::size_t>(n);
    head_off_ += static_cast<std::size_t>(n);
    if (head_off_ == head.size()) {
      outq_.pop_front();
      head_off_ = 0;
    }
  }
  if (close_after_flush_) closing_ = true;
  return true;
}

// ---- EventLoop ---------------------------------------------------------

EventLoop::EventLoop() : readbuf_(64 * 1024) {
  ep_ = ::epoll_create1(EPOLL_CLOEXEC);
}

EventLoop::~EventLoop() {
  close_all();
  stop_listening();
  if (ep_ >= 0) ::close(ep_);
}

Result<std::uint16_t> EventLoop::listen(
    std::uint16_t port, ConnectionHandlers handlers,
    std::function<void(Connection&)> on_accept) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno_error("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Error e = errno_error("bind");
    ::close(fd);
    return e;
  }
  if (::listen(fd, 64) != 0) {
    const Error e = errno_error("listen");
    ::close(fd);
    return e;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const std::uint16_t bound = ntohs(addr.sin_port);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  ::epoll_ctl(ep_, EPOLL_CTL_ADD, fd, &ev);
  listeners_[fd] =
      Listener{fd, bound, std::move(handlers), std::move(on_accept)};
  return bound;
}

Result<Connection*> EventLoop::connect(std::uint16_t port,
                                       ConnectionHandlers handlers) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno_error("socket");
  sockaddr_in addr = loopback(port);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    const Error e = errno_error("connect");
    ::close(fd);
    return e;
  }
  auto conn = std::unique_ptr<Connection>(new Connection(this, fd, next_id_++));
  conn->connecting_ = rc != 0;
  Connection* raw = conn.get();
  epoll_event ev{};
  ev.events = EPOLLIN | (conn->connecting_ ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  ::epoll_ctl(ep_, EPOLL_CTL_ADD, fd, &ev);
  conns_[fd] = Entry{std::move(conn), std::move(handlers)};
  if (!raw->connecting_ && conns_[fd].handlers.on_connect) {
    conns_[fd].handlers.on_connect(*raw);
  }
  return raw;
}

void EventLoop::update_write_interest(Connection& c) {
  const bool want = !c.outq_.empty() || c.connecting_;
  if (want == c.want_write_) return;
  c.want_write_ = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = c.fd_;
  ::epoll_ctl(ep_, EPOLL_CTL_MOD, c.fd_, &ev);
}

void EventLoop::accept_ready(Listener& l) {
  for (;;) {
    const int fd = ::accept4(l.fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: wait for next report
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn =
        std::unique_ptr<Connection>(new Connection(this, fd, next_id_++));
    Connection* raw = conn.get();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(ep_, EPOLL_CTL_ADD, fd, &ev);
    conns_[fd] = Entry{std::move(conn), l.handlers};
    if (l.on_accept) l.on_accept(*raw);
    if (raw->closing()) doomed_.push_back(fd);
  }
}

void EventLoop::conn_ready(int fd, std::uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& c = *it->second.conn;
  if (c.connecting_) {
    if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
      doomed_.push_back(fd);
      return;
    }
    if ((events & EPOLLOUT) != 0) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        doomed_.push_back(fd);
        return;
      }
      c.connecting_ = false;
      c.want_write_ = true;  // EPOLLOUT was registered for the connect
      update_write_interest(c);
      if (it->second.handlers.on_connect) it->second.handlers.on_connect(c);
      if (c.closing()) {
        doomed_.push_back(fd);
        return;
      }
    }
  }
  if ((events & EPOLLOUT) != 0 && !c.connecting_) {
    if (!c.flush()) {
      doomed_.push_back(fd);
      return;
    }
    update_write_interest(c);
  }
  if ((events & EPOLLIN) != 0) {
    for (;;) {
      const ssize_t n = ::recv(fd, readbuf_.data(), readbuf_.size(), 0);
      if (n > 0) {
        if (it->second.handlers.on_data) {
          it->second.handlers.on_data(
              c, BytesView(readbuf_.data(), static_cast<std::size_t>(n)));
        }
        if (c.closing()) {
          doomed_.push_back(fd);
          return;
        }
        continue;
      }
      if (n == 0) {  // orderly peer close
        doomed_.push_back(fd);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      doomed_.push_back(fd);
      return;
    }
  }
  if ((events & (EPOLLERR | EPOLLHUP)) != 0 || c.closing()) {
    doomed_.push_back(fd);
  }
}

void EventLoop::destroy(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  // Move the entry out first: on_close may reentrantly inspect the loop.
  Entry entry = std::move(it->second);
  conns_.erase(it);
  ::epoll_ctl(ep_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  if (entry.handlers.on_close) entry.handlers.on_close(*entry.conn);
}

int EventLoop::poll(int timeout_ms) {
  epoll_event events[64];
  const int n = ::epoll_wait(ep_, events, 64, timeout_ms);
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    auto lit = listeners_.find(fd);
    if (lit != listeners_.end()) {
      accept_ready(lit->second);
    } else {
      conn_ready(fd, events[i].events);
    }
  }
  // Deferred teardown: handlers ran with stable Connection references;
  // doomed fds (possibly queued twice) die here.
  std::sort(doomed_.begin(), doomed_.end());
  doomed_.erase(std::unique(doomed_.begin(), doomed_.end()), doomed_.end());
  std::vector<int> doomed;
  doomed.swap(doomed_);
  for (int fd : doomed) destroy(fd);
  return n < 0 ? 0 : n;
}

void EventLoop::stop_listening() {
  for (auto& [fd, l] : listeners_) {
    ::epoll_ctl(ep_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
  }
  listeners_.clear();
}

void EventLoop::close_all() {
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, e] : conns_) fds.push_back(fd);
  for (int fd : fds) destroy(fd);
  doomed_.clear();
}

std::size_t EventLoop::total_buffered() const {
  std::size_t total = 0;
  for (const auto& [fd, e] : conns_) total += e.conn->buffered();
  return total;
}

}  // namespace psc::gateway

#include "gateway/oracle.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <vector>

#include "gateway/clients.h"
#include "gateway/gateway.h"
#include "testing/fuzz_target.h"
#include "testing/mutator.h"

namespace psc::gateway {

namespace {

namespace fs = std::filesystem;

struct PoolEntry {
  Bytes data;
  bool is_http = false;  // route to the HTTP listener instead of RTMP
};

void load_target_pool(const std::string& name, bool is_http,
                      const std::string& corpus_dir,
                      std::vector<PoolEntry>& pool) {
  const testing::FuzzTarget* t = testing::TargetRegistry::instance().find(name);
  if (t != nullptr && t->corpus) {
    for (Bytes& b : t->corpus()) pool.push_back({std::move(b), is_http});
  }
  if (corpus_dir.empty()) return;
  std::error_code ec;
  for (const auto& entry :
       fs::directory_iterator(fs::path(corpus_dir) / name, ec)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    Bytes b((std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
    pool.push_back({std::move(b), is_http});
  }
}

/// Pump the peer and the gateway until the peer's queue drains (or the
/// gateway closed the connection). Bounded: a gateway that stops reading
/// must not hang the oracle.
void pump_until_drained(Gateway& gw, SocketPump& pump, int max_turns) {
  Bytes discard;
  for (int i = 0; i < max_turns; ++i) {
    const bool alive = pump.step(discard);
    discard.clear();
    gw.poll_once(0);
    if (!alive || pump.closed() || pump.peer_closed()) return;
    if (pump.pending() == 0) return;
  }
}

/// Drive the gateway until every oracle connection is gone.
bool settle(Gateway& gw, int max_turns) {
  for (int i = 0; i < max_turns; ++i) {
    if (gw.loop().connection_count() == 0) return true;
    gw.poll_once(1);
  }
  return gw.loop().connection_count() == 0;
}

bool healthz_ok(Gateway& gw) {
  HlsFetchClient probe;
  if (!probe.connect(gw.http_port()).ok()) return false;
  probe.get("/healthz");
  for (int i = 0; i < 2000 && !probe.done(); ++i) {
    if (!probe.step()) return false;
    gw.poll_once(0);
  }
  if (!probe.done()) return false;
  const bool ok = probe.take_response().status == 200;
  probe.close();
  settle(gw, 200);
  return ok;
}

}  // namespace

int run_gateway_oracle(const OracleOptions& opts, std::ostream& out) {
  testing::register_builtin_targets();

  std::vector<PoolEntry> pool;
  load_target_pool("rtmp_handshake", /*is_http=*/false, opts.corpus_dir, pool);
  load_target_pool("rtmp_chunk", /*is_http=*/false, opts.corpus_dir, pool);
  load_target_pool("http_request", /*is_http=*/true, opts.corpus_dir, pool);
  if (pool.empty()) {
    out << "gateway oracle: no corpus entries (unknown targets?)\n";
    return 1;
  }
  std::vector<Bytes> splice_corpus;
  splice_corpus.reserve(pool.size());
  for (const PoolEntry& e : pool) splice_corpus.push_back(e.data);

  GatewayConfig cfg;
  cfg.rtmp_port = 0;
  cfg.http_port = 0;
  cfg.enable_api = false;
  cfg.seed = opts.seed;
  Gateway gw(cfg);
  if (const Status s = gw.start(); !s.ok()) {
    out << "gateway oracle: start failed: " << s.error().to_string() << "\n";
    return 1;
  }

  testing::Mutator mutator(opts.seed);
  std::uint64_t digest = 0xcbf29ce484222325ull;
  std::uint64_t violations = 0;

  for (std::uint64_t iter = 0; iter < opts.iters; ++iter) {
    const PoolEntry& entry = pool[mutator.below(pool.size())];
    Bytes mutant = mutator.mutate(entry.data, splice_corpus);
    if (mutant.size() > opts.max_input_bytes) {
      mutant.resize(opts.max_input_bytes);
    }
    digest = testing::fnv1a(mutant, digest);

    SocketPump peer;
    if (!peer.connect(entry.is_http ? gw.http_port() : gw.rtmp_port()).ok()) {
      ++violations;
      out << "gateway oracle: iter " << iter << ": connect refused\n";
      break;
    }
    // Feed the mutant in deterministic random-sized slices; the kernel is
    // free to refragment further.
    std::size_t off = 0;
    while (off < mutant.size()) {
      const std::size_t n =
          std::min(mutant.size() - off, 1 + mutator.below(4096));
      peer.queue(Bytes(mutant.begin() + static_cast<std::ptrdiff_t>(off),
                       mutant.begin() + static_cast<std::ptrdiff_t>(off + n)));
      off += n;
      pump_until_drained(gw, peer, 10000);
      if (peer.closed() || peer.peer_closed()) break;
    }
    peer.close();
    if (!settle(gw, 2000)) {
      ++violations;
      out << "gateway oracle: iter " << iter << ": "
          << gw.loop().connection_count()
          << " connection(s) leaked after peer close\n";
    }
    if ((iter + 1) % 50 == 0 && !healthz_ok(gw)) {
      ++violations;
      out << "gateway oracle: iter " << iter << ": /healthz failed\n";
    }
  }

  const bool healthy = healthz_ok(gw);
  if (!healthy) out << "gateway oracle: final /healthz failed\n";
  out << "FUZZ {\"target\":\"gateway_live_peer\",\"iters\":" << opts.iters
      << ",\"seed\":" << opts.seed << ",\"violations\":" << violations
      << ",\"digest\":\"" << std::hex << digest << std::dec << "\"}\n";
  return violations == 0 && healthy ? 0 : 1;
}

}  // namespace psc::gateway

// Live-peer fuzz oracle: replay mutated wire-format corpus entries over
// real loopback sockets against an in-process gateway.
//
// The sans-io fuzz targets (psc_fuzz) prove the parsers survive hostile
// bytes; this oracle proves the *hosted* stack does — epoll loop, buffered
// writers, MediaOrigin sessions and the HTTP parser all wired together,
// with the kernel free to fragment the stream however it likes. The
// contract is no-crash / clean-error: every iteration must leave the
// gateway alive (a /healthz probe answers 200) and with its connection
// count back at baseline. Mutation is seed-deterministic (the digest on
// the FUZZ line witnesses it); only TCP arrival boundaries vary run to
// run, which is exactly the point of the exercise.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace psc::gateway {

struct OracleOptions {
  std::uint64_t iters = 300;
  std::uint64_t seed = 1;
  /// Checked-in seed corpus (<corpus_dir>/<target>/*.bin); empty = only
  /// the targets' generated corpora.
  std::string corpus_dir;
  /// Mutants are clamped to this size (bounds oracle wall time).
  std::size_t max_input_bytes = 64 * 1024;
};

/// Runs the oracle; prints one FUZZ line to `out`. Returns 0 on success,
/// 1 on a contract violation (details printed).
int run_gateway_oracle(const OracleOptions& opts, std::ostream& out);

}  // namespace psc::gateway

// The real-socket interop gateway: RTMP ingest + HTTP/HLS egress over
// actual loopback TCP, backed by the *unmodified* sim-time service tier.
//
// Topology (one thread, one epoll loop):
//
//   RTMP peer ──▶ EventLoop ──▶ service::MediaOrigin ──StreamHooks──▶
//                                          │                 SegmentStore
//   HLS peer  ──▶ EventLoop ──▶ http::RequestParser ──▶ routes ──▶ ─┘
//                                          │
//   wall clock ─▶ SimBridge ──▶ sim::Simulation (World arrivals, ApiServer)
//
// The MediaOrigin, ApiServer, World, segmenter and load ledgers are the
// exact objects the deterministic campaigns run; the gateway only pumps
// bytes between them and real sockets and paces the simulation against the
// wall clock via SimBridge. A frame published over a real RTMP socket
// therefore produces TS segments byte-identical to the sans-io loopback
// pipeline (tests/test_gateway.cpp proves it differentially).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "gateway/event_loop.h"
#include "gateway/segment_store.h"
#include "gateway/sim_bridge.h"
#include "http/http.h"
#include "obs/metrics.h"
#include "service/api.h"
#include "service/origin_server.h"
#include "service/servers.h"
#include "service/world.h"
#include "sim/simulation.h"
#include "util/buffer.h"
#include "util/result.h"

namespace psc::gateway {

struct GatewayConfig {
  /// Listener ports (0 = ephemeral; tests bind 0 and read back).
  std::uint16_t rtmp_port = 1935;
  std::uint16_t http_port = 8080;
  Duration segment_target = seconds(3.6);
  std::size_t playlist_window = 6;
  /// Extra expired segments kept resolvable per stream.
  std::size_t retain_extra = 4;
  /// Per-connection write cap (slow-peer back-pressure bound).
  std::size_t write_cap = 4u << 20;
  std::uint64_t seed = 1;
  /// Host a World + ApiServer and bridge POST /api/v2/<name>.
  bool enable_api = true;
  /// Mean concurrent broadcasts in the hosted world (kept small: the
  /// gateway world exists to exercise the API tier, not a full campaign).
  double world_concurrent = 40;
  /// Longest epoll sleep; bounds sim-clock staleness while idle.
  int poll_cap_ms = 50;
};

class Gateway {
 public:
  /// `clock` overrides the wall clock (tests drive a manual one).
  explicit Gateway(const GatewayConfig& cfg, SimBridge::WallClock clock = {});
  ~Gateway();

  /// Bind both listeners. Fails if a fixed port is taken.
  Status start();

  std::uint16_t rtmp_port() const { return rtmp_port_; }
  std::uint16_t http_port() const { return http_port_; }

  /// One turn: advance the simulation to the wall deadline, then wait for
  /// socket readiness no longer than the next sim event allows. Returns
  /// the number of socket events handled.
  int poll_once(int cap_ms = -1);

  /// Serve until `keep_running` returns false, then drain gracefully.
  void run(const std::function<bool()>& keep_running);

  /// Graceful shutdown: stop accepting, flush every in-flight segment
  /// (whole-segment commits only — no torn TS output), mark playlists
  /// ENDLIST, and ask every connection to close once its queue drains.
  void request_shutdown();
  bool shutdown_requested() const { return shutdown_; }
  /// True once every connection has drained and closed.
  bool drained() const { return loop_.connection_count() == 0; }

  // --- accessors (tests, probe, bench, metrics snapshot) ---
  sim::Simulation& sim() { return sim_; }
  SimBridge& bridge() { return bridge_; }
  EventLoop& loop() { return loop_; }
  service::MediaOrigin& origin() { return origin_; }
  SegmentStore& store() { return store_; }
  obs::Registry& metrics() { return metrics_; }
  service::ApiServer* api() { return api_.get(); }
  util::BufferArena& arena() { return arena_; }

  std::uint64_t http_requests() const { return http_requests_; }
  std::uint64_t segments_served() const { return segments_served_; }
  std::uint64_t bytes_served() const { return bytes_served_; }
  std::uint64_t rtmp_accepted() const { return rtmp_accepted_; }
  std::uint64_t http_accepted() const { return http_accepted_; }

 private:
  struct HttpConn {
    Connection* conn = nullptr;
    http::RequestParser parser;
  };

  void on_rtmp_accept(Connection& c);
  void on_rtmp_data(Connection& c, BytesView data);
  void on_rtmp_close(Connection& c);
  /// Drain MediaOrigin output queues to their sockets (fan-out may have
  /// produced bytes for connections other than the one that just spoke).
  void pump_rtmp_output();

  void on_http_accept(Connection& c);
  void on_http_data(Connection& c, BytesView data);
  void on_http_close(Connection& c);
  void handle_http(Connection& c, const http::Request& req);
  void send_response(Connection& c, int status, const std::string& content_type,
                     util::BufferSlice body, bool keep_alive);

  GatewayConfig cfg_;
  sim::Simulation sim_;
  SimBridge bridge_;
  EventLoop loop_;
  util::BufferArena arena_;
  obs::Registry metrics_;

  service::MediaOrigin origin_;
  SegmentStore store_;

  std::unique_ptr<service::World> world_;
  std::unique_ptr<service::MediaServerPool> servers_;
  std::unique_ptr<service::ApiServer> api_;

  /// MediaOrigin connection id -> socket, for the fan-out output pump.
  std::map<int, Connection*> rtmp_conns_;
  std::map<std::uint64_t, HttpConn> http_conns_;

  std::uint16_t rtmp_port_ = 0;
  std::uint16_t http_port_ = 0;
  bool shutdown_ = false;

  std::uint64_t http_requests_ = 0;
  std::uint64_t segments_served_ = 0;
  std::uint64_t bytes_served_ = 0;
  std::uint64_t rtmp_accepted_ = 0;
  std::uint64_t http_accepted_ = 0;
};

}  // namespace psc::gateway

#include "service/origin_server.h"

namespace psc::service {

void MediaOrigin::set_obs(obs::Obs* obs) {
  if (obs == nullptr) {
    conns_ = bytes_in_ = bytes_out_ = nullptr;
    return;
  }
  conns_ = &obs->metrics.counter("origin_connections_total");
  bytes_in_ = &obs->metrics.counter("origin_rtmp_bytes_in_total");
  bytes_out_ = &obs->metrics.counter("origin_rtmp_bytes_out_total");
}

int MediaOrigin::open_connection() {
  const int conn = next_conn_++;
  if (conns_ != nullptr) conns_->add(1);
  Connection c;
  c.session = std::make_unique<rtmp::ServerSession>(
      seed_ ^ (0x9E37u * static_cast<std::uint64_t>(conn)));
  connections_[conn] = std::move(c);
  wire_publish_hooks(conn);
  return conn;
}

void MediaOrigin::wire_publish_hooks(int conn) {
  rtmp::ServerSession::PublishCallbacks cbs;
  cbs.on_publish_start = [this, conn](const std::string& key) {
    Connection& c = connections_.at(conn);
    c.stream = key;
    c.is_publisher = true;
    Stream& s = stream_of(key);
    s.publisher_conn = conn;
    if (stream_hooks_.on_publish_start) {
      stream_hooks_.on_publish_start(key, now_);
    }
  };
  cbs.on_avc_config = [this, conn](const media::AvcDecoderConfig& cfg) {
    Connection& c = connections_.at(conn);
    if (c.stream.empty()) return;
    Stream& s = stream_of(c.stream);
    s.config = cfg;
    if (stream_hooks_.on_avc_config) {
      stream_hooks_.on_avc_config(c.stream, cfg);
    }
    // Late config: forward to already-attached players.
    for (int player : s.players) {
      auto it = connections_.find(player);
      if (it != connections_.end()) {
        it->second.session->send_avc_config(cfg.sps, cfg.pps);
      }
    }
  };
  cbs.on_sample = [this, conn](media::MediaSample sample) {
    Connection& c = connections_.at(conn);
    if (c.stream.empty()) return;
    Stream& s = stream_of(c.stream);
    // Published video arrives as AVCC (FLV framing); the fan-out path
    // re-wraps per player, so convert back to Annex-B once here.
    if (sample.kind == media::SampleKind::Video) {
      auto annexb = media::avcc_to_annexb(sample.data);
      if (!annexb) return;
      sample.data = std::move(annexb).value();
    }
    if (stream_hooks_.on_sample) {
      stream_hooks_.on_sample(c.stream, sample, now_);
    }
    if (sample.kind == media::SampleKind::Video && sample.keyframe) {
      s.backlog.clear();
    }
    s.backlog.push_back(sample);
    static constexpr std::size_t kBacklogCap = 512;
    while (s.backlog.size() > kBacklogCap) s.backlog.pop_front();
    for (int player : s.players) {
      auto it = connections_.find(player);
      if (it != connections_.end()) {
        it->second.session->send_sample(sample);
      }
    }
  };
  connections_.at(conn).session->set_publish_callbacks(std::move(cbs));
}

void MediaOrigin::attach_player(int conn, const std::string& stream) {
  Connection& c = connections_.at(conn);
  c.stream = stream;
  Stream& s = stream_of(stream);
  s.players.insert(conn);
  // Decodable join burst: config + backlog from the latest keyframe.
  if (s.config) {
    c.session->send_avc_config(s.config->sps, s.config->pps);
  }
  for (const media::MediaSample& sample : s.backlog) {
    c.session->send_sample(sample);
  }
}

void MediaOrigin::close_connection(int conn) {
  auto it = connections_.find(conn);
  if (it == connections_.end()) return;
  if (!it->second.stream.empty()) {
    auto sit = streams_.find(it->second.stream);
    if (sit != streams_.end()) {
      sit->second.players.erase(conn);
      if (it->second.is_publisher &&
          sit->second.publisher_conn == conn) {
        // Publisher gone: the stream ends.
        streams_.erase(sit);
        if (stream_hooks_.on_publish_end) {
          stream_hooks_.on_publish_end(it->second.stream, now_);
        }
      }
    }
  }
  connections_.erase(it);
}

Status MediaOrigin::on_input(int conn, BytesView data) {
  if (fault_hook_ && fault_hook_(now_)) {
    // Restarting: the process is not accepting bytes; the peer sees the
    // connection reset and should reconnect with backoff.
    close_connection(conn);
    return Error{"origin_restarting", "origin server restarting"};
  }
  auto it = connections_.find(conn);
  if (it == connections_.end()) {
    return Error{"origin", "unknown connection"};
  }
  const bool was_playing = it->second.session->playing();
  ledger_.add_request(
      it->second.stream.empty() ? "rtmp" : it->second.stream, now_,
      static_cast<double>(data.size()));
  if (bytes_in_ != nullptr) {
    bytes_in_->add(static_cast<double>(data.size()));
  }
  if (auto s = it->second.session->on_input(data); !s) return s;
  // A play command may have completed during this input.
  if (!was_playing && it->second.session->playing() &&
      it->second.stream.empty()) {
    attach_player(conn, it->second.session->stream_name());
  }
  return {};
}

Bytes MediaOrigin::take_output(int conn) {
  auto it = connections_.find(conn);
  if (it == connections_.end()) return Bytes{};
  Bytes out = it->second.session->take_output();
  if (!out.empty()) {
    ledger_.add_request(
        it->second.stream.empty() ? "rtmp" : it->second.stream, now_,
        static_cast<double>(out.size()));
    if (bytes_out_ != nullptr) {
      bytes_out_->add(static_cast<double>(out.size()));
    }
  }
  return out;
}

bool MediaOrigin::has_output(int conn) const {
  auto it = connections_.find(conn);
  return it != connections_.end() && it->second.session->has_output();
}

std::vector<std::string> MediaOrigin::live_streams() const {
  std::vector<std::string> out;
  for (const auto& [name, s] : streams_) {
    if (s.publisher_conn >= 0) out.push_back(name);
  }
  return out;
}

std::size_t MediaOrigin::viewer_count(const std::string& stream) const {
  auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.players.size();
}

}  // namespace psc::service

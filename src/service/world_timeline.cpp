#include "service/world_timeline.h"

#include <algorithm>
#include <utility>

namespace psc::service {

std::shared_ptr<const WorldTimeline> WorldTimeline::record(
    const WorldConfig& cfg, std::uint64_t seed, Duration horizon,
    Duration epoch_length) {
  // Plain `new`: the ctor is private (make_shared can't reach it) and the
  // result is handed out const-only.
  std::shared_ptr<WorldTimeline> tl(
      new WorldTimeline(cfg, horizon, epoch_length));

  sim::Simulation sim;
  World world(sim, cfg, seed);
  world.set_observer(
      [&tl](const BroadcastInfo& b, TimePoint at) {
        const std::size_t idx = tl->log_.append(b, at);
        tl->by_id_.emplace(b.id, idx);
      },
      [&tl](const BroadcastId& id, TimePoint at) {
        auto it = tl->by_id_.find(id);
        if (it != tl->by_id_.end()) tl->log_.close(it->second, at);
      });
  world.start(/*prepopulate=*/true);
  sim.run_until(time_at(to_s(horizon)));
  tl->log_.seal(horizon);
  return tl;
}

const BroadcastInfo* WorldTimeline::find_at(const BroadcastId& id,
                                            TimePoint t) const {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return nullptr;
  if (!log_.present_at(it->second, t)) return nullptr;
  return &log_.entry(it->second).value;
}

std::vector<const BroadcastInfo*> ReplayWorld::query_rect(
    const geo::GeoRect& rect, bool include_ended_replays) const {
  const TimePoint now = sim_.now();
  const WorldConfig& cfg = timeline_->world_config();
  const double p_visible = map_query::visible_fraction(rect, cfg);
  std::vector<const BroadcastInfo*> hits;
  timeline_->for_each_present(now, [&](const BroadcastInfo& b) {
    if (map_query::admit(b, rect, include_ended_replays, now, cfg,
                         p_visible)) {
      hits.push_back(&b);
    }
  });
  map_query::rank_and_truncate(hits, now, cfg.map_response_cap);
  return hits;
}

const BroadcastInfo* ReplayWorld::find(const BroadcastId& id) const {
  return timeline_->find_at(id, sim_.now());
}

const BroadcastInfo* ReplayWorld::teleport(Rng& rng,
                                           Duration min_remaining) const {
  const TimePoint now = sim_.now();
  std::vector<const BroadcastInfo*> candidates;
  timeline_->for_each_present(now, [&](const BroadcastInfo& b) {
    if (map_query::teleport_candidate(b, now, min_remaining)) {
      candidates.push_back(&b);
    }
  });
  if (candidates.empty()) return nullptr;
  // Id order, to match World's map iteration: the same rng state lands on
  // the same broadcast in the live and the replayed world.
  std::sort(candidates.begin(), candidates.end(),
            [](const BroadcastInfo* a, const BroadcastInfo* b) {
              return a->id < b->id;
            });
  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (const BroadcastInfo* b : candidates) {
    weights.push_back(map_query::teleport_weight(*b, now));
  }
  return candidates[rng.weighted_index(weights)];
}

void ReplayWorld::for_each_live(
    const std::function<void(const BroadcastInfo&)>& fn) const {
  const TimePoint now = sim_.now();
  timeline_->for_each_present(now, [&](const BroadcastInfo& b) {
    if (b.live_at(now)) fn(b);
  });
}

std::size_t ReplayWorld::live_count() const {
  const TimePoint now = sim_.now();
  std::size_t n = 0;
  timeline_->for_each_present(now, [&](const BroadcastInfo& b) {
    if (b.live_at(now)) ++n;
  });
  return n;
}

}  // namespace psc::service

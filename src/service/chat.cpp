#include "service/chat.h"

#include <cmath>

#include "http/websocket.h"
#include "json/json.h"
#include "util/strings.h"

namespace psc::service {

ChatRoom::ChatRoom(sim::Simulation& sim, const BroadcastInfo* info,
                   const ChatConfig& cfg, std::uint64_t seed)
    : sim_(sim), info_(info), cfg_(cfg), rng_(seed) {}

int ChatRoom::join(MessageFn fn) {
  const int token = next_token_++;
  members_[token] = std::move(fn);
  send_allowed_[token] = joined_ever_ < cfg_.full_threshold;
  ++joined_ever_;
  return token;
}

void ChatRoom::leave(int token) {
  members_.erase(token);
  send_allowed_.erase(token);
}

bool ChatRoom::can_send(int token) const {
  auto it = send_allowed_.find(token);
  return it != send_allowed_.end() && it->second;
}

double ChatRoom::current_rate_hz() const {
  const int viewers =
      info_ != nullptr ? info_->viewers_at(sim_.now()) : 10;
  return std::max(cfg_.min_rate_hz,
                  cfg_.rate_per_sqrt_viewer *
                      std::sqrt(static_cast<double>(std::max(1, viewers))));
}

void ChatRoom::start(Duration run_for) {
  running_ = true;
  stop_at_ = sim_.now() + run_for;
  schedule_next();
}

void ChatRoom::schedule_next() {
  if (!running_ || sim_.now() >= stop_at_) return;
  const Duration gap = seconds(rng_.exponential(current_rate_hz()));
  sim_.schedule_after(gap, [this] {
    if (!running_ || sim_.now() >= stop_at_) return;
    static constexpr const char* kTexts[] = {
        "hello from brazil", "so cool", "where is this?", "lol",
        "follow me back", "what's the song?", "nice view", "first!",
    };
    ChatMessage msg;
    msg.from = strf("user%d", static_cast<int>(rng_.uniform_int(1, 99999)));
    msg.text = kTexts[rng_.uniform_int(0, 7)];
    // The real wire cost: a server->client WebSocket text frame carrying
    // the JSON envelope (paper §3: chat is delivered over Websockets).
    json::Object envelope;
    envelope["kind"] = "chat";
    envelope["from"] = msg.from;
    envelope["text"] = msg.text;
    msg.wire_bytes =
        ws::server_text_frame(json::Value(std::move(envelope)).dump())
            .size();
    ++sent_;
    for (auto& [token, fn] : members_) fn(sim_.now(), msg);
    schedule_next();
  });
}

}  // namespace psc::service

// Broadcast chat room (WebSocket-delivered in the real service).
//
// Two behaviours from the paper matter here: (1) the chat becomes "full"
// once a certain number of viewers has joined — later joiners can watch
// but not send; (2) chat traffic arrives as a steady stream of small
// messages, each waking the radio and CPU of a viewing phone — the cause
// of the startling power cost measured in Fig. 8.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "service/broadcast.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace psc::service {

struct ChatMessage {
  std::string from;
  std::string text;
  std::size_t wire_bytes = 0;  // WebSocket frame size
};

struct ChatConfig {
  int full_threshold = 250;       // joiners allowed to send
  double rate_per_sqrt_viewer = 0.35;  // messages/s per sqrt(viewer)
  double min_rate_hz = 0.05;
};

class ChatRoom {
 public:
  using MessageFn = std::function<void(TimePoint, const ChatMessage&)>;

  ChatRoom(sim::Simulation& sim, const BroadcastInfo* info,
           const ChatConfig& cfg, std::uint64_t seed);

  /// Join the room; delivered messages invoke `fn`. Returns a token.
  int join(MessageFn fn);
  void leave(int token);

  /// False once the room was full when this member joined.
  bool can_send(int token) const;

  void start(Duration run_for);
  void stop() { running_ = false; }

  std::uint64_t messages_sent() const { return sent_; }

 private:
  void schedule_next();
  double current_rate_hz() const;

  sim::Simulation& sim_;
  const BroadcastInfo* info_;
  ChatConfig cfg_;
  Rng rng_;
  std::map<int, MessageFn> members_;
  std::map<int, bool> send_allowed_;
  int joined_ever_ = 0;
  int next_token_ = 1;
  bool running_ = false;
  TimePoint stop_at_{};
  std::uint64_t sent_ = 0;
};

}  // namespace psc::service

// The simulated Periscope world: broadcast arrivals placed on a hotspot
// map, live-set bookkeeping, and the zoom-dependent map query the
// crawler works against.
//
// Scope note (see DESIGN.md): we simulate the *discoverable* population —
// public broadcasts with disclosed location. The paper estimates ~40K
// concurrent broadcasts total but its crawler could only ever see the
// 1-4K map-visible ones; those are exactly what this world contains.
//
// World is the live, event-driven WorldView implementation. An observer
// can watch every broadcast enter and leave the registry — that is how
// WorldTimeline records a campaign-global world once so every shard can
// replay it (see world_timeline.h).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "geo/geo.h"
#include "service/broadcast.h"
#include "service/world_view.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace psc::service {

class World : public WorldView {
 public:
  World(sim::Simulation& sim, const WorldConfig& cfg, std::uint64_t seed);

  /// Begin the arrival process (optionally pre-populating the live set so
  /// measurements can start immediately).
  void start(bool prepopulate = true);

  std::vector<const BroadcastInfo*> query_rect(
      const geo::GeoRect& rect,
      bool include_ended_replays = false) const override;

  const BroadcastInfo* find(const BroadcastId& id) const override;

  const BroadcastInfo* teleport(Rng& rng,
                                Duration min_remaining) const override;

  void for_each_live(
      const std::function<void(const BroadcastInfo&)>& fn) const override;

  std::size_t live_count() const override;
  std::size_t total_created() const { return total_created_; }

  sim::Simulation& sim() { return sim_; }
  const WorldConfig& config() const override { return cfg_; }

  /// Direct access for experiment setup (e.g. injecting a broadcast with
  /// chosen parameters). Returns the stored descriptor.
  const BroadcastInfo* add_broadcast(BroadcastInfo info);

  /// Observe the registry: `on_added` fires for every broadcast entering
  /// (including prepopulation and injection), `on_removed` when the GC
  /// drops it. Either may be null. Set before start().
  using AddedFn = std::function<void(const BroadcastInfo&, TimePoint)>;
  using RemovedFn = std::function<void(const BroadcastId&, TimePoint)>;
  void set_observer(AddedFn on_added, RemovedFn on_removed) {
    on_added_ = std::move(on_added);
    on_removed_ = std::move(on_removed);
  }

 private:
  struct Hotspot {
    geo::GeoPoint center;
    double spread_deg = 1.0;
    double weight = 1.0;
  };

  void schedule_next_arrival();
  void spawn_one(TimePoint start_time);
  void gc();
  geo::GeoPoint draw_location();

  sim::Simulation& sim_;
  WorldConfig cfg_;
  Rng rng_;
  std::vector<Hotspot> hotspots_;
  double arrival_rate_hz_ = 1.0;
  std::map<BroadcastId, std::unique_ptr<BroadcastInfo>> broadcasts_;
  std::size_t total_created_ = 0;
  AddedFn on_added_;
  RemovedFn on_removed_;
};

}  // namespace psc::service

// The simulated Periscope world: broadcast arrivals placed on a hotspot
// map, live-set bookkeeping, and the zoom-dependent map query the
// crawler works against.
//
// Scope note (see DESIGN.md): we simulate the *discoverable* population —
// public broadcasts with disclosed location. The paper estimates ~40K
// concurrent broadcasts total but its crawler could only ever see the
// 1-4K map-visible ones; those are exactly what this world contains.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "geo/geo.h"
#include "service/broadcast.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace psc::service {

struct WorldConfig {
  PopulationConfig population;
  /// Mean number of concurrently live (discoverable) broadcasts.
  double target_concurrent = 2600;
  /// Number of geographic hotspots ("cities") and the Zipf skew of their
  /// popularity.
  int hotspot_count = 220;
  double hotspot_zipf_s = 1.15;
  /// Fraction of broadcasts placed uniformly at random instead of in a
  /// hotspot.
  double background_fraction = 0.12;
  /// Map API: max broadcasts returned per mapGeoBroadcastFeed call.
  std::size_t map_response_cap = 60;
  /// Zoom-dependent visibility: at a query area of `vis_full_area_deg2`
  /// or smaller every broadcast shows; for larger areas only a fraction
  /// ~ (full/area)^gamma does (deterministic per broadcast, monotone in
  /// zoom). This reproduces the paper's "the map usually shows only a
  /// fraction of the broadcasts available in a large region and more
  /// broadcasts become visible as the user zooms in". Broadcasts with
  /// >= vis_always_viewers current viewers are always shown (featured).
  double vis_full_area_deg2 = 400.0;
  double vis_gamma = 0.5;
  int vis_always_viewers = 100;
  /// Ended broadcasts are garbage collected this long after ending.
  Duration gc_grace = seconds(120);
};

class World {
 public:
  World(sim::Simulation& sim, const WorldConfig& cfg, std::uint64_t seed);

  /// Begin the arrival process (optionally pre-populating the live set so
  /// measurements can start immediately).
  void start(bool prepopulate = true);

  /// Map query: live broadcasts inside `rect`, ranked by current viewers,
  /// truncated at the response cap. With `include_ended_replays`,
  /// recently-ended broadcasts kept for replay also appear (the app's
  /// include_replay attribute; the paper's crawler forces it off to
  /// discover live broadcasts only).
  std::vector<const BroadcastInfo*> query_rect(
      const geo::GeoRect& rect, bool include_ended_replays = false) const;

  const BroadcastInfo* find(const BroadcastId& id) const;

  /// The "Teleport" button: a random live broadcast, weighted by current
  /// viewer count (joining as a random viewer does), optionally requiring
  /// a minimum remaining lifetime so a watch session can complete.
  const BroadcastInfo* teleport(Rng& rng, Duration min_remaining) const;

  std::size_t live_count() const;
  std::size_t total_created() const { return total_created_; }

  sim::Simulation& sim() { return sim_; }
  const WorldConfig& config() const { return cfg_; }

  /// Direct access for experiment setup (e.g. injecting a broadcast with
  /// chosen parameters). Returns the stored descriptor.
  const BroadcastInfo* add_broadcast(BroadcastInfo info);

 private:
  struct Hotspot {
    geo::GeoPoint center;
    double spread_deg = 1.0;
    double weight = 1.0;
  };

  void schedule_next_arrival();
  void spawn_one(TimePoint start_time);
  void gc();
  geo::GeoPoint draw_location();

  sim::Simulation& sim_;
  WorldConfig cfg_;
  Rng rng_;
  std::vector<Hotspot> hotspots_;
  double arrival_rate_hz_ = 1.0;
  std::map<BroadcastId, std::unique_ptr<BroadcastInfo>> broadcasts_;
  std::size_t total_created_ = 0;
};

}  // namespace psc::service

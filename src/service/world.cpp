#include "service/world.h"

#include <algorithm>
#include <cmath>

namespace psc::service {

World::World(sim::Simulation& sim, const WorldConfig& cfg, std::uint64_t seed)
    : sim_(sim), cfg_(cfg), rng_(seed) {
  // Hotspots: population-like latitude bands (most mass 20-55 N), Zipf
  // weights, modest geographic spread.
  hotspots_.reserve(static_cast<std::size_t>(cfg_.hotspot_count));
  for (int i = 0; i < cfg_.hotspot_count; ++i) {
    Hotspot h;
    const double band = rng_.uniform();
    if (band < 0.62) {
      h.center.lat_deg = rng_.uniform(20, 55);
    } else if (band < 0.82) {
      h.center.lat_deg = rng_.uniform(-5, 20);
    } else if (band < 0.94) {
      h.center.lat_deg = rng_.uniform(-40, -5);
    } else {
      h.center.lat_deg = rng_.uniform(55, 65);
    }
    // Longitudes cluster into the three population belts (Americas,
    // Europe/Africa, Asia-Pacific); the clustering is what makes the
    // GLOBAL discoverable count swing with UTC hour in Fig. 1 — with
    // uniform longitudes the regional diurnal cycles would cancel.
    const double belt = rng_.uniform();
    if (belt < 0.30) {
      h.center.lon_deg = rng_.normal(-85, 18);   // Americas
    } else if (belt < 0.60) {
      h.center.lon_deg = rng_.normal(15, 15);    // Europe / Africa
    } else if (belt < 0.92) {
      h.center.lon_deg = rng_.normal(115, 18);   // Asia-Pacific
    } else {
      h.center.lon_deg = rng_.uniform(-180, 180);
    }
    while (h.center.lon_deg >= 180) h.center.lon_deg -= 360;
    while (h.center.lon_deg < -180) h.center.lon_deg += 360;
    h.spread_deg = rng_.uniform(0.2, 1.5);
    h.weight = 1.0 / std::pow(static_cast<double>(i + 1), cfg_.hotspot_zipf_s);
    hotspots_.push_back(h);
  }

  // Arrival rate so that E[concurrent] = rate * E[duration] matches the
  // target. E[duration] for the log-normal mixture:
  const auto& p = cfg_.population;
  const double mean_dur =
      p.zero_viewer_fraction *
          std::exp(p.dur0_mu + p.dur0_sigma * p.dur0_sigma / 2) +
      (1 - p.zero_viewer_fraction) *
          std::exp(p.dur_mu + p.dur_sigma * p.dur_sigma / 2);
  arrival_rate_hz_ = cfg_.target_concurrent / mean_dur;
}

geo::GeoPoint World::draw_location() {
  if (rng_.bernoulli(cfg_.background_fraction)) {
    return geo::GeoPoint{rng_.uniform(-55, 68), rng_.uniform(-180, 180)};
  }
  // Weighted hotspot choice + Gaussian scatter around it.
  std::vector<double> weights;
  weights.reserve(hotspots_.size());
  for (const auto& h : hotspots_) weights.push_back(h.weight);
  const Hotspot& h = hotspots_[rng_.weighted_index(weights)];
  geo::GeoPoint p;
  p.lat_deg =
      std::clamp(h.center.lat_deg + rng_.normal(0, h.spread_deg), -89.0, 89.0);
  p.lon_deg = h.center.lon_deg + rng_.normal(0, h.spread_deg);
  while (p.lon_deg >= 180) p.lon_deg -= 360;
  while (p.lon_deg < -180) p.lon_deg += 360;
  return p;
}

void World::spawn_one(TimePoint start_time) {
  geo::GeoPoint loc = draw_location();
  // Diurnal thinning: acceptance proportional to the local-hour weight.
  const double w = diurnal_weight(geo::local_hour(start_time, loc.lon_deg));
  static constexpr double kMaxDiurnal = 1.40;
  if (!rng_.bernoulli(w / kMaxDiurnal)) return;
  BroadcastInfo b = draw_broadcast(cfg_.population, rng_, loc, start_time);
  // Popularity couples to local time: evening/night streams find the
  // most viewers, early-morning ones the fewest (paper Fig. 2(b) — the
  // super-linear exponent makes the diurnal pattern visible through the
  // heavy-tailed viewer distribution). Watched broadcasts stay watched
  // (floor ≥ 1 viewer): the zero-viewer class and its short-duration
  // profile are drawn explicitly in draw_broadcast.
  if (b.peak_viewers > 0) {
    b.peak_viewers = std::max(1.0, b.peak_viewers * std::pow(w, 1.3));
  }
  add_broadcast(std::move(b));
}

const BroadcastInfo* World::add_broadcast(BroadcastInfo info) {
  ++total_created_;
  auto owned = std::make_unique<BroadcastInfo>(std::move(info));
  const BroadcastInfo* ptr = owned.get();
  broadcasts_[ptr->id] = std::move(owned);
  if (on_added_) on_added_(*ptr, sim_.now());
  return ptr;
}

void World::schedule_next_arrival() {
  const Duration gap = seconds(rng_.exponential(arrival_rate_hz_));
  sim_.schedule_after(gap, [this] {
    spawn_one(sim_.now());
    schedule_next_arrival();
  });
}

void World::gc() {
  const TimePoint cutoff = sim_.now() - cfg_.gc_grace;
  for (auto it = broadcasts_.begin(); it != broadcasts_.end();) {
    if (it->second->end_time() < cutoff) {
      if (on_removed_) on_removed_(it->first, sim_.now());
      it = broadcasts_.erase(it);
    } else {
      ++it;
    }
  }
  sim_.schedule_after(seconds(60), [this] { gc(); });
}

void World::start(bool prepopulate) {
  if (prepopulate) {
    // Stationary prepopulation: live broadcasts observed at a random time
    // are length-biased; sample by rejection against the duration and
    // place the observation point uniformly inside the lifetime.
    const auto target = static_cast<std::size_t>(cfg_.target_concurrent);
    std::size_t created = 0;
    std::size_t attempts = 0;
    const double mean_dur = cfg_.target_concurrent / arrival_rate_hz_;
    while (created < target && attempts < target * 200) {
      ++attempts;
      geo::GeoPoint loc = draw_location();
      BroadcastInfo b =
          draw_broadcast(cfg_.population, rng_, loc, sim_.now());
      const double accept = to_s(b.planned_duration) / (6.0 * mean_dur);
      if (!rng_.bernoulli(std::min(1.0, accept))) continue;
      const double age = rng_.uniform(0, to_s(b.planned_duration));
      b.start_time = sim_.now() - seconds(age);
      add_broadcast(std::move(b));
      ++created;
    }
  }
  schedule_next_arrival();
  sim_.schedule_after(seconds(60), [this] { gc(); });
}

std::vector<const BroadcastInfo*> World::query_rect(
    const geo::GeoRect& rect, bool include_ended_replays) const {
  const TimePoint now = sim_.now();
  const double p_visible = map_query::visible_fraction(rect, cfg_);
  std::vector<const BroadcastInfo*> hits;
  for (const auto& [id, b] : broadcasts_) {
    if (map_query::admit(*b, rect, include_ended_replays, now, cfg_,
                         p_visible)) {
      hits.push_back(b.get());
    }
  }
  map_query::rank_and_truncate(hits, now, cfg_.map_response_cap);
  return hits;
}

const BroadcastInfo* World::find(const BroadcastId& id) const {
  auto it = broadcasts_.find(id);
  return it == broadcasts_.end() ? nullptr : it->second.get();
}

const BroadcastInfo* World::teleport(Rng& rng,
                                     Duration min_remaining) const {
  const TimePoint now = sim_.now();
  std::vector<const BroadcastInfo*> candidates;
  std::vector<double> weights;
  // Map iteration is id-ordered, so the weighted pick is a deterministic
  // function of (registry contents, rng state) — ReplayWorld sorts its
  // candidates the same way.
  for (const auto& [id, b] : broadcasts_) {
    if (!map_query::teleport_candidate(*b, now, min_remaining)) continue;
    candidates.push_back(b.get());
    weights.push_back(map_query::teleport_weight(*b, now));
  }
  if (candidates.empty()) return nullptr;
  return candidates[rng.weighted_index(weights)];
}

void World::for_each_live(
    const std::function<void(const BroadcastInfo&)>& fn) const {
  const TimePoint now = sim_.now();
  for (const auto& [id, b] : broadcasts_) {
    if (b->live_at(now)) fn(*b);
  }
}

std::size_t World::live_count() const {
  const TimePoint now = sim_.now();
  std::size_t n = 0;
  for (const auto& [id, b] : broadcasts_) {
    if (b->live_at(now)) ++n;
  }
  return n;
}

}  // namespace psc::service

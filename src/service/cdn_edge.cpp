#include "service/cdn_edge.h"

#include <cstdlib>

#include "util/strings.h"

namespace psc::service {

void CdnEdge::set_obs(obs::Obs* obs) {
  if (obs == nullptr) {
    requests_ = hits_ = misses_ = nullptr;
    return;
  }
  requests_ = &obs->metrics.counter("cdn_requests_total");
  hits_ = &obs->metrics.counter("cdn_hits_total");
  misses_ = &obs->metrics.counter("cdn_misses_total");
}

http::Response CdnEdge::handle(const http::Request& req,
                               TimePoint now) const {
  // Every served response lands in the edge's per-epoch load account —
  // and in the metric sink when one is attached.
  const auto serve = [&](http::Response r) {
    ledger_.add_request(host_, now, static_cast<double>(r.body.size()));
    if (requests_ != nullptr) {
      requests_->add(1);
      (r.status == 200 ? hits_ : misses_)->add(1);
    }
    return r;
  };
  if (fault_hook_ && fault_hook_(now)) {
    // Injected edge outage: the PoP is up enough to answer, but broken.
    http::Response r;
    r.status = 503;
    r.reason = http::reason_for(503);
    return serve(std::move(r));
  }
  if (req.method != "GET" || !starts_with(req.path, "/hls/")) {
    return serve(http::Response::not_found());
  }
  // /hls/<id>/<rest>
  const std::string after = req.path.substr(5);
  const std::size_t slash = after.find('/');
  if (slash == std::string::npos) return serve(http::Response::not_found());
  const std::string id = after.substr(0, slash);
  const std::string rest = after.substr(slash + 1);

  auto it = pipelines_.find(id);
  if (it == pipelines_.end()) return serve(http::Response::not_found());
  const LiveBroadcastPipeline& pipe = *it->second;

  // Rendition prefix "r<k>/".
  std::size_t rendition = 0;
  std::string leaf = rest;
  if (!leaf.empty() && leaf[0] == 'r') {
    const std::size_t rs = leaf.find('/');
    if (rs != std::string::npos) {
      const long k = std::strtol(leaf.c_str() + 1, nullptr, 10);
      if (k > 0 && static_cast<std::size_t>(k) < pipe.rendition_count()) {
        rendition = static_cast<std::size_t>(k);
        leaf = leaf.substr(rs + 1);
      }
    }
  }

  if (leaf == "master.m3u8") {
    return serve(http::Response::ok(to_bytes(pipe.master_playlist()),
                                    "application/vnd.apple.mpegurl"));
  }
  if (leaf == "playlist.m3u8") {
    return serve(http::Response::ok(
        to_bytes(hls::write_m3u8(pipe.edge_playlist(now, rendition))),
        "application/vnd.apple.mpegurl"));
  }
  if (leaf == "vod.m3u8") {
    return serve(http::Response::ok(
        to_bytes(hls::write_m3u8(pipe.vod_playlist(rendition))),
        "application/vnd.apple.mpegurl"));
  }
  if (starts_with(leaf, "seg_")) {
    // Resolve through the pipeline's URI scheme (handles renditions).
    const std::string uri =
        rendition == 0 ? leaf : strf("r%zu/%s", rendition, leaf.c_str());
    const LiveBroadcastPipeline::EdgeSegment* seg = pipe.find_segment(uri);
    if (seg == nullptr || seg->available_at > now) {
      // Not (yet) on this edge.
      return serve(http::Response::not_found());
    }
    return serve(http::Response::ok(seg->segment.ts_data, "video/mp2t"));
  }
  return serve(http::Response::not_found());
}

}  // namespace psc::service

// The RTMP origin media server ("vidman-*" on EC2, §3).
//
// A MediaOrigin owns many RTMP connections. Broadcasters publish streams
// keyed by broadcast id; viewers play them. Published media is fanned out
// live to every attached player, and a per-stream GOP backlog gives
// joining viewers an immediately decodable burst — the same origin
// behaviour LiveBroadcastPipeline models in the aggregate, here as an
// actual byte-in/byte-out server usable over any transport.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "media/types.h"
#include "obs/bundle.h"
#include "rtmp/session.h"
#include "service/load.h"

namespace psc::service {

class MediaOrigin {
 public:
  explicit MediaOrigin(std::uint64_t seed) : seed_(seed) {}

  /// Accept a new TCP connection; returns its id.
  int open_connection();
  /// Close and forget a connection (detaches it from any stream).
  void close_connection(int conn);

  /// Feed bytes received from the peer of connection `conn`.
  Status on_input(int conn, BytesView data);
  /// Drain bytes to send to the peer of connection `conn`.
  Bytes take_output(int conn);
  bool has_output(int conn) const;

  /// Streams currently being published.
  std::vector<std::string> live_streams() const;
  /// Viewers attached to a stream.
  std::size_t viewer_count(const std::string& stream) const;

  /// Server-local clock for load accounting. The origin itself is
  /// transport-driven and clockless; whoever pumps bytes through it
  /// advances this before on_input()/take_output() so the per-epoch
  /// account books the traffic into the right bucket.
  void advance_to(TimePoint now) { now_ = now; }
  void set_load_epoch_length(Duration len) { ledger_.set_epoch_length(len); }
  /// Per-epoch ingest/egress account, keyed by stream name (or "rtmp"
  /// while a connection has not yet bound to a stream).
  const EpochLoadLedger& load_ledger() const { return ledger_; }

  /// Attach a metric sink (nullptr = off): connection counter plus RTMP
  /// ingest/egress byte counters.
  void set_obs(obs::Obs* obs);

  /// Fault injection: while the hook returns true for the server-local
  /// clock, the origin is restarting — on_input refuses bytes with a
  /// clean error, which drops the connection's protocol session.
  void set_fault_hook(std::function<bool(TimePoint)> hook) {
    fault_hook_ = std::move(hook);
  }

  /// Published-stream observer: lets a co-located packager (the interop
  /// gateway's HLS segmenter) tap the ingest path without owning a player
  /// connection. on_sample sees the stream exactly as the fan-out path
  /// does — video already converted back to Annex-B — and on_publish_end
  /// fires when the publisher's connection closes (stream over). Unset
  /// hooks leave origin behaviour bit-identical.
  struct StreamHooks {
    std::function<void(const std::string&, TimePoint)> on_publish_start;
    std::function<void(const std::string&, const media::AvcDecoderConfig&)>
        on_avc_config;
    std::function<void(const std::string&, const media::MediaSample&,
                       TimePoint)>
        on_sample;
    std::function<void(const std::string&, TimePoint)> on_publish_end;
  };
  void set_stream_hooks(StreamHooks hooks) { stream_hooks_ = std::move(hooks); }

 private:
  struct Stream {
    std::optional<media::AvcDecoderConfig> config;
    std::deque<media::MediaSample> backlog;  // from latest keyframe
    std::set<int> players;
    int publisher_conn = -1;
  };

  struct Connection {
    std::unique_ptr<rtmp::ServerSession> session;
    std::string stream;  // set once playing or publishing
    bool is_publisher = false;
  };

  void wire_publish_hooks(int conn);
  void attach_player(int conn, const std::string& stream);
  Stream& stream_of(const std::string& name) { return streams_[name]; }

  std::uint64_t seed_;
  std::function<bool(TimePoint)> fault_hook_;
  StreamHooks stream_hooks_;
  int next_conn_ = 1;
  TimePoint now_{};
  EpochLoadLedger ledger_;
  std::map<int, Connection> connections_;
  std::map<std::string, Stream> streams_;
  obs::Counter* conns_ = nullptr;
  obs::Counter* bytes_in_ = nullptr;
  obs::Counter* bytes_out_ = nullptr;
};

}  // namespace psc::service

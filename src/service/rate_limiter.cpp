#include "service/rate_limiter.h"

#include <algorithm>

namespace psc::service {

Duration RateLimiter::full_after() const {
  if (cfg_.refill_per_sec <= 0) return Duration{1e30};
  return Duration{cfg_.capacity / cfg_.refill_per_sec};
}

void RateLimiter::sweep(TimePoint now) {
  const Duration idle_limit = full_after();
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    if (now - it->second.last >= idle_limit) {
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
  last_sweep_ = now;
}

bool RateLimiter::allow(const std::string& account, TimePoint now) {
  // Amortised eviction: at most one full sweep per refill period.
  if (now - last_sweep_ >= full_after()) sweep(now);
  Bucket& b = buckets_[account];
  if (!b.init) {
    b.tokens = cfg_.capacity;
    b.last = now;
    b.init = true;
  }
  b.tokens = std::min(cfg_.capacity,
                      b.tokens + to_s(now - b.last) * cfg_.refill_per_sec);
  b.last = now;
  if (b.tokens >= 1.0) {
    b.tokens -= 1.0;
    return true;
  }
  return false;
}

}  // namespace psc::service

#include "service/rate_limiter.h"

#include <algorithm>

namespace psc::service {

bool RateLimiter::allow(const std::string& account, TimePoint now) {
  Bucket& b = buckets_[account];
  if (!b.init) {
    b.tokens = cfg_.capacity;
    b.last = now;
    b.init = true;
  }
  b.tokens = std::min(cfg_.capacity,
                      b.tokens + to_s(now - b.last) * cfg_.refill_per_sec);
  b.last = now;
  if (b.tokens >= 1.0) {
    b.tokens -= 1.0;
    return true;
  }
  return false;
}

}  // namespace psc::service

// Broadcast descriptors and the statistical population model.
//
// Calibrated against §4 of the paper:
//   * durations: log-normal, most 1-10 min, ~half under 4 min, long tail
//     past a day; zero-viewer broadcasts much shorter (avg ~2 vs ~13 min);
//   * viewers: >10% of broadcasts have none, >90% fewer than 20 on
//     average, a heavy tail reaches thousands;
//   * start times follow a diurnal pattern in the broadcaster's local
//     time (slump in the early hours, morning peak, rise toward
//     midnight).
#pragma once

#include <cstdint>
#include <string>

#include "geo/geo.h"
#include "media/content.h"
#include "media/types.h"
#include "util/rng.h"
#include "util/units.h"

namespace psc::service {

using BroadcastId = std::string;  // 13-character id, as in the real API

BroadcastId make_broadcast_id(Rng& rng);

/// Everything the service knows about one broadcast.
struct BroadcastInfo {
  BroadcastId id;
  geo::GeoPoint location;
  TimePoint start_time{};
  Duration planned_duration{0};
  std::string status_text;  // typically uninformative, as the paper notes
  /// Private broadcasts are viewable by chosen users only: they never
  /// appear on the map and their streams are encrypted (RTMPS / HTTPS,
  /// paper §3). The study's crawler misses them entirely.
  bool is_private = false;

  // Popularity model.
  double peak_viewers = 0;  // 0 => nobody ever watches
  bool available_for_replay = false;

  // Media parameters fixed at broadcast start.
  media::GopPattern gop = media::GopPattern::IBP;
  media::ContentClass content = media::ContentClass::Indoor;
  double video_bitrate = 300e3;
  double audio_bitrate = 32e3;
  bool portrait = true;  // 320x568 vs 568x320
  double uplink_bitrate = 2.5e6;
  double frame_loss_prob = 0.002;
  std::uint64_t seed = 0;

  TimePoint end_time() const { return start_time + planned_duration; }
  bool live_at(TimePoint t) const {
    return t >= start_time && t < end_time();
  }

  /// Concurrent viewer count at time t: a ramp-up/plateau/decay profile
  /// scaled by peak_viewers. Deterministic per broadcast.
  int viewers_at(TimePoint t) const;

  /// Lifetime average concurrent viewers (closed form of the profile).
  double average_viewers() const;
};

struct PopulationConfig {
  /// Fraction of broadcasts nobody ever watches (paper: >10%).
  double zero_viewer_fraction = 0.12;
  /// Pareto tail for peak viewers among watched broadcasts.
  double viewer_pareto_xm = 1.3;
  double viewer_pareto_alpha = 1.05;
  double viewer_cap = 20000;

  /// Log-normal duration parameters for watched broadcasts
  /// (median ~4.3 min, heavy tail).
  double dur_mu = 5.56;  // ln seconds
  double dur_sigma = 1.45;
  /// ... and for zero-viewer broadcasts (median ~1.5 min).
  double dur0_mu = 4.5;
  double dur0_sigma = 1.1;
  Duration dur_min = seconds(20);
  Duration dur_max = hours(30);

  /// Probability a watched broadcast is kept for replay (the paper found
  /// >80% of zero-viewer broadcasts were NOT available for replay).
  double replay_fraction_watched = 0.65;
  double replay_fraction_zero = 0.17;
};

/// Draw a full broadcast descriptor (location supplied by the world map).
BroadcastInfo draw_broadcast(const PopulationConfig& cfg, Rng& rng,
                             geo::GeoPoint location, TimePoint start);

/// Relative broadcast start rate by local hour [0,24): slump ~4-6 am,
/// morning peak, rise toward midnight.
double diurnal_weight(double local_hour);

}  // namespace psc::service

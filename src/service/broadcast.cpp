#include "service/broadcast.h"

#include <algorithm>
#include <cmath>

namespace psc::service {

BroadcastId make_broadcast_id(Rng& rng) {
  static constexpr char kAlphabet[] =
      "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";
  BroadcastId id;
  id.reserve(13);
  for (int i = 0; i < 13; ++i) {
    id.push_back(kAlphabet[rng.uniform_int(0, sizeof(kAlphabet) - 2)]);
  }
  return id;
}

int BroadcastInfo::viewers_at(TimePoint t) const {
  if (!live_at(t) || peak_viewers <= 0) return 0;
  const double dur = to_s(planned_duration);
  const double x = to_s(t - start_time) / dur;  // normalized [0,1)
  // Ramp up over the first 15%, plateau, mild decay at the end.
  double shape = 1.0;
  if (x < 0.15) {
    shape = x / 0.15;
  } else if (x > 0.85) {
    shape = 1.0 - 0.5 * (x - 0.85) / 0.15;
  }
  return static_cast<int>(std::lround(peak_viewers * shape));
}

double BroadcastInfo::average_viewers() const {
  if (peak_viewers <= 0) return 0.0;
  // Integral of the ramp/plateau/decay profile: 0.5*0.15 + 0.7 + 0.75*0.15.
  return peak_viewers * (0.075 + 0.70 + 0.1125);
}

BroadcastInfo draw_broadcast(const PopulationConfig& cfg, Rng& rng,
                             geo::GeoPoint location, TimePoint start) {
  BroadcastInfo b;
  b.id = make_broadcast_id(rng);
  b.location = location;
  b.start_time = start;

  const bool zero_viewers = rng.bernoulli(cfg.zero_viewer_fraction);
  if (zero_viewers) {
    b.peak_viewers = 0;
    b.planned_duration = seconds(rng.lognormal(cfg.dur0_mu, cfg.dur0_sigma));
    b.available_for_replay = rng.bernoulli(cfg.replay_fraction_zero);
  } else {
    b.peak_viewers = std::min(
        cfg.viewer_cap,
        rng.pareto(cfg.viewer_pareto_xm, cfg.viewer_pareto_alpha));
    b.planned_duration = seconds(rng.lognormal(cfg.dur_mu, cfg.dur_sigma));
    b.available_for_replay = rng.bernoulli(cfg.replay_fraction_watched);
  }
  b.planned_duration =
      std::clamp(b.planned_duration, cfg.dur_min, cfg.dur_max);

  static constexpr const char* kStatuses[] = {
      "", "hi", "come chat", "late night stream", "just hanging out",
      "#live", "ask me anything", "walking around", "music", "??"};
  b.status_text = kStatuses[rng.uniform_int(0, 9)];

  // Media parameters (paper §5.2): IBP dominant, ~20% IP-only, I-only
  // rare; 200-400 kbps video; 32 or 64 kbps audio.
  const double g = rng.uniform();
  b.gop = g < 0.795 ? media::GopPattern::IBP
                    : (g < 0.995 ? media::GopPattern::IP
                                 : media::GopPattern::IOnly);
  b.content = media::draw_content_class(rng);
  // Typical streams target 200-400 kbps; a tail of high-motion streams
  // runs much hotter (Fig. 6(a)'s RTMP maximum reaches ~1 Mbps) — these
  // are the sessions that suffer first when the access link is capped.
  b.video_bitrate = rng.bernoulli(0.12) ? rng.uniform(450e3, 900e3)
                                        : rng.uniform(230e3, 360e3);
  b.audio_bitrate = rng.bernoulli(0.6) ? 32e3 : 64e3;
  b.portrait = rng.bernoulli(0.8);
  // Broadcaster uplink: mostly comfortable, sometimes marginal.
  b.uplink_bitrate = rng.bernoulli(0.85) ? rng.uniform(1.5e6, 8e6)
                                         : rng.uniform(0.5e6, 1.2e6);
  b.frame_loss_prob = rng.bernoulli(0.25) ? rng.uniform(0.001, 0.01) : 0.0;
  b.seed = rng.engine()();
  return b;
}

double diurnal_weight(double local_hour) {
  // Piecewise-linear weights per hour; slump at 4-6 am, peak in the
  // morning, rising trend toward midnight (paper Fig. 2(b) discussion).
  static constexpr double kWeights[24] = {
      1.10, 0.80, 0.55, 0.40, 0.30, 0.32, 0.45, 0.70,  // 0-7
      1.00, 1.15, 1.10, 1.00, 0.95, 0.92, 0.95, 1.00,  // 8-15
      1.02, 1.05, 1.10, 1.15, 1.22, 1.30, 1.38, 1.25,  // 16-23
  };
  const int h0 = static_cast<int>(local_hour) % 24;
  const int h1 = (h0 + 1) % 24;
  const double f = local_hour - std::floor(local_hour);
  return kWeights[h0] * (1 - f) + kWeights[h1] * f;
}

}  // namespace psc::service

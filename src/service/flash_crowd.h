// Deterministic flash-crowd timeline.
//
// A FlashCrowdSchedule is an immutable, sorted list of viewer spikes —
// when a crowd arrives, how fast it rises, how long it holds and how it
// decays. Spikes are pure data generated from a SplitMix64 seed (or
// parsed from a small text format) *before* any simulation runs, so every
// shard of a campaign sees the same crowd timeline regardless of thread
// count — exactly like fault::Plan and the shared-world WorldTimeline.
//
// The burst shapes follow the Twitch.TV measurement study (PAPERS.md):
// audience mass concentrates on a handful of top channels (Zipf rank
// skew) and the large swings are event-driven — a raid dumps an existing
// audience onto a channel within seconds, a celebrity going live draws a
// fast ramp that holds, organic discovery builds and fades slowly. The
// AggregateAudience (aggregate_audience.h) resolves each spike's
// channel_rank onto a live broadcast and integrates the resulting
// viewer-count trajectories.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/units.h"

namespace psc::service {

/// Burst taxonomy (Twitch study: event-driven surges dominate).
enum class SpikeShape {
  Raid,           // an existing audience lands at once: seconds-long rise
  CelebrityLive,  // push-notification ramp, long hold
  Organic,        // discovery/front-page build-up, slow rise and fade
};
inline constexpr int kSpikeShapeCount = 3;

const char* spike_shape_name(SpikeShape s);
/// False (and *out untouched) for an unknown name.
bool spike_shape_from_name(std::string_view name, SpikeShape* out);

struct Spike {
  SpikeShape shape = SpikeShape::Raid;
  TimePoint start{};
  double peak_viewers = 0;
  Duration rise{0};       // linear ramp 0 -> peak
  Duration hold{0};       // plateau at peak
  Duration decay_tau{0};  // exponential decay time constant after the hold
  /// Popularity rank of the target channel among broadcasts live at
  /// `start` (0 = most-watched). The audience model resolves this onto a
  /// concrete broadcast id — the Twitch study's channel-popularity skew.
  int channel_rank = 0;

  /// Crowd size contributed by this spike at `t` (closed form, >= 0).
  double viewers_at(TimePoint t) const;
};

struct FlashCrowdGenConfig {
  /// Timeline length; spikes all start inside [0, horizon). Also the
  /// fluid tier's integration horizon in independent-worlds mode.
  Duration horizon = seconds(1800);
  /// Mean spike count over a 1800 s horizon (scaled by horizon).
  double spikes_per_1800s = 6;
  /// Pareto peak-size skew: most spikes are modest, a few are enormous.
  double peak_xm = 2e4;
  double peak_alpha = 1.1;
  double peak_cap = 1e6;
  /// Spikes hit popular channels: rank ~ Zipf(max_rank, rank_zipf_s) - 1.
  int max_rank = 12;
  double rank_zipf_s = 1.4;
};

class FlashCrowdSchedule {
 public:
  FlashCrowdSchedule() = default;

  /// Deterministic timeline from `seed`: same seed + config => identical
  /// schedule, on every shard and every machine.
  static FlashCrowdSchedule generate(std::uint64_t seed,
                                     const FlashCrowdGenConfig& cfg = {});

  /// Parse the text format (see to_text). Malformed input yields a clean
  /// Error; accepted input is canonicalised exactly like generate's
  /// output, so to_text(parse(t)) is a fixpoint after one application.
  static Result<FlashCrowdSchedule> parse(std::string_view text);

  /// Canonical text form:
  ///   # psc-flashcrowd v1
  ///   spike raid start=120.5 peak=250000 rise=8 hold=45 tau=120 rank=0
  std::string to_text() const;

  bool empty() const { return spikes_.empty(); }
  std::size_t size() const { return spikes_.size(); }
  const std::vector<Spike>& spikes() const { return spikes_; }

 private:
  explicit FlashCrowdSchedule(std::vector<Spike> spikes);  // canonical sort

  std::vector<Spike> spikes_;  // sorted by (start, shape, rank, ...)
};

}  // namespace psc::service

// Fluid-model aggregate viewer tier (hybrid-fidelity campaigns).
//
// Full-protocol sessions are expensive: a campaign tops out at a few
// hundred of them, while the paper's headline phenomena — join/stall
// distributions under popular broadcasts — are shaped by audiences of
// 10^5..10^6. The hybrid split: a *fluid* tier carries the viewer mass as
// continuous per-broadcast populations (arrivals, departures, flash-crowd
// spikes) and converts them into edge/origin load-ledger contributions
// and cache-hit dynamics, while a deterministically sampled cohort (the
// ordinary full-protocol sessions, reweighted by 1/sample_rate) keeps the
// byte-accurate RTMP/HLS pipeline so Fig. 3/4/5-style QoE CDFs still come
// off the wire — now measured *under* million-viewer load.
//
// Like WorldTimeline and fault::Plan, the audience is a *closed* process:
// it depends only on (timeline, schedule, config) and is fully integrated
// at construction, before any session runs. Nothing a cohort session does
// feeds back into it, so every shard can read it lock-free and the
// sample rate cannot perturb the fluid state (the invariance the property
// tests pin down).
//
// Population dynamics per broadcast b:
//   target T_b(t) = baseline_multiplier * b.viewers_at(t)
//                 + sum of spikes resolved onto b        (while b is live)
// integrated on a fixed grid aligned to epoch boundaries. Each step emits
//   churn     = v * dt / mean_watch_s          (audience turnover)
//   arrivals  = churn + max(0, T(t+dt) - v)
//   departures= churn + max(0, v - T(t+dt))
// so v tracks T exactly and, *by construction*,
//   pop_end = pop_begin + arrivals - departures   (conservation)
//   v >= 0                                         (non-negativity)
// hold per broadcast per epoch. Broadcast end flushes the remaining
// population as departures.
//
// Delivery split mirrors accessVideo: up to hls_viewer_threshold viewers
// watch RTMP from the broadcast's origin; the overflow watches HLS,
// striped half/half across the two edges. Edge cache model: every viewer
// fetches one segment per segment_duration_s, but only the first fetch of
// each segment misses to the origin — hits = requests - distinct
// segments while the overflow is non-empty.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/broadcast.h"
#include "service/flash_crowd.h"
#include "service/load.h"
#include "service/servers.h"
#include "service/world_timeline.h"

namespace psc::service {

struct AggregateConfig {
  /// Off by default: campaigns without the fluid tier are bit-identical
  /// to builds that predate it (no RNG draws, no events, no load).
  bool enabled = false;
  /// Flash-crowd schedule seed, used verbatim (never mixed with the
  /// shard seed) so every shard sees the same crowd timeline.
  std::uint64_t schedule_seed = 1;
  FlashCrowdGenConfig gen;
  /// Explicit schedule text (FlashCrowdSchedule::to_text format);
  /// overrides generation when parseable.
  std::string schedule_text;
  /// Cohort sampling: one full-protocol session stands for 1/sample_rate
  /// aggregate viewers. Tagging/reweighting only — the fluid tier itself
  /// never reads this (see SampleRateDoesNotTouchFluidState).
  double sample_rate = 1e-3;
  /// Fluid integration step; snapped so it divides the epoch length
  /// (grid points never straddle an epoch boundary).
  Duration step = seconds(10);
  /// Scales BroadcastInfo viewer curves up to the mass audience: the
  /// map's viewer counts are a popularity signal, the true audience of a
  /// service with millions of users is this multiple of it.
  double baseline_multiplier = 50;
  /// Mean audience membership time (churn time constant).
  double mean_watch_s = 240;
  /// Viewers beyond this watch HLS (accessVideo's switch threshold).
  int hls_viewer_threshold = 100;
  double segment_duration_s = 3.6;
};

/// Per-epoch aggregate totals across all broadcasts.
struct AggregateEpoch {
  double arrivals = 0;
  double departures = 0;
  double pop_begin = 0;
  double pop_end = 0;
  double viewer_seconds = 0;
  double peak_concurrent = 0;  // max over grid points in the epoch
  double rtmp_viewer_seconds = 0;
  double hls_viewer_seconds = 0;
  double edge_requests = 0;
  double edge_hits = 0;
  double origin_requests = 0;  // edge misses fetched upstream
  double bytes = 0;            // media bytes delivered to the fluid tier
};

class AggregateAudience {
 public:
  /// Per-broadcast per-epoch conservation book (the property-test
  /// surface): pop_end = pop_begin + arrivals - departures.
  struct BroadcastEpoch {
    std::size_t epoch = 0;
    double arrivals = 0;
    double departures = 0;
    double pop_begin = 0;
    double pop_end = 0;
  };

  /// Integrates the full fluid state at construction (closed process —
  /// immutable afterwards, safe to share across shards). `servers`
  /// resolves which origin/edge ips the fluid load lands on; only ips are
  /// kept, the pool is not retained.
  AggregateAudience(std::shared_ptr<const WorldTimeline> timeline,
                    FlashCrowdSchedule schedule,
                    const MediaServerPool& servers,
                    const AggregateConfig& cfg, Duration epoch_length);

  const AggregateConfig& config() const { return cfg_; }
  const FlashCrowdSchedule& schedule() const { return schedule_; }
  Duration epoch_length() const { return epoch_length_; }

  /// Fluid load book, same key space as the session ledgers; the runner
  /// merges it into the EpochLoadBoard before the shard ledgers.
  const EpochLoadLedger& ledger() const { return ledger_; }

  const std::vector<AggregateEpoch>& epochs() const { return epochs_; }
  const std::map<BroadcastId, std::vector<BroadcastEpoch>>& per_broadcast()
      const {
    return per_broadcast_;
  }

  /// Aggregate population of broadcast `id` at `t` (closed-form target
  /// trajectory; 0 for broadcasts the fluid tier does not cover).
  double viewers_at(const BroadcastId& id, TimePoint t) const;
  /// Crowd on top of the broadcast's native viewers_at — what the API
  /// overlay adds to n_watching so flash-crowded cohort sessions cross
  /// the HLS threshold like real ones would.
  double extra_viewers_at(const BroadcastInfo& b, TimePoint t) const;

  /// Campaign-wide peak concurrent fluid viewers (max over the grid).
  double peak_concurrent() const { return peak_concurrent_; }
  /// Total fluid viewer-sessions (arrivals); cohort size ~= this *
  /// sample_rate.
  double total_arrivals() const { return total_arrivals_; }
  double total_viewer_seconds() const { return total_viewer_seconds_; }

  /// Spike -> resolved broadcast id ("" when no live broadcast could
  /// host the spike). Index-aligned with schedule().spikes().
  const std::vector<BroadcastId>& spike_targets() const {
    return spike_targets_;
  }

 private:
  struct BroadcastPlan {
    const sim::IntervalTimeline<BroadcastInfo>::Entry* entry = nullptr;
    std::vector<std::size_t> spikes;  // indices into schedule_.spikes()
    std::string origin_ip;
  };

  double target_at(const BroadcastPlan& plan, TimePoint t) const;
  void resolve_spikes(const WorldTimeline& timeline);
  void integrate(const MediaServerPool& servers);

  FlashCrowdSchedule schedule_;
  AggregateConfig cfg_;
  Duration epoch_length_;
  Duration step_;  // snapped to divide epoch_length_
  Duration horizon_;

  std::vector<BroadcastId> spike_targets_;
  std::unordered_map<std::string, std::vector<std::size_t>>
      spikes_by_broadcast_;
  std::array<std::string, 2> edge_ips_;

  EpochLoadLedger ledger_;
  std::vector<AggregateEpoch> epochs_;
  std::map<BroadcastId, std::vector<BroadcastEpoch>> per_broadcast_;
  /// Kept for viewers_at readback: broadcast id -> its timeline entry +
  /// assigned spikes (the timeline shared_ptr keeps entries alive).
  std::shared_ptr<const WorldTimeline> timeline_;
  std::unordered_map<std::string, BroadcastPlan> plans_;
  double peak_concurrent_ = 0;
  double total_arrivals_ = 0;
  double total_viewer_seconds_ = 0;
};

/// The campaign's schedule from its config: explicit text when given and
/// parseable (a warning is printed otherwise), else generated from
/// schedule_seed + gen. Used identically by both campaign modes.
FlashCrowdSchedule make_flash_crowd_schedule(const AggregateConfig& cfg);

}  // namespace psc::service

// The live media pipeline of one broadcast:
//
//   phone encoder --uplink link--> RTMP origin (EC2)
//                                   |--> push to RTMP viewers (no delay)
//                                   '--> segmenter -> packaging delay
//                                         -> CDN transfer -> HLS edge
//
// The origin keeps a backlog from the latest keyframe so a joining RTMP
// viewer receives an immediately decodable burst (this is what makes RTMP
// join fast). HLS viewers fetch segments from the edge; a segment only
// exists once it has been cut (target 3.6 s), transcoded/packaged and
// shipped to the CDN — the structural source of the 5 s+ delivery latency
// the paper measured for HLS.
//
// Broadcaster-side impairments: the uplink has throughput noise plus
// occasional multi-second "hiccups" (rate collapse), which surface as
// viewer-side stalls even on unconstrained access links — the paper saw
// such stalls in the unlimited-bandwidth dataset.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "hls/playlist.h"
#include "hls/segmenter.h"
#include "media/encoder.h"
#include "media/transcode.h"
#include "net/link.h"
#include "obs/bundle.h"
#include "service/broadcast.h"
#include "sim/simulation.h"

namespace psc::service {

/// One lower-quality rendition of the transcode ladder.
struct RenditionSpec {
  std::string name;
  media::TranscodeProfile profile;
  /// BANDWIDTH advertised in the master playlist.
  double nominal_bandwidth_bps = 200e3;
};

struct PipelineConfig {
  Duration encode_latency = millis(80);
  Duration uplink_latency = millis(40);
  Duration origin_to_cdn_latency = millis(30);
  BitRate origin_to_cdn_rate = 1e9;
  Duration packaging_delay = millis(1200);  // transcode + repackage
  Duration segment_target = seconds(3.6);
  std::size_t playlist_window = 6;
  /// Uplink hiccups: mean time between events and duration range.
  double hiccup_rate_per_min = 0.5;
  Duration hiccup_min = seconds(2);
  Duration hiccup_max = seconds(6);
  /// Lower renditions produced by the packager in addition to the source
  /// ("possibly while transcoding it to multiple qualities", §5.1).
  /// Empty = single-quality HLS, which is what the paper observed.
  std::vector<RenditionSpec> transcode_ladder;
  /// BANDWIDTH the master playlist advertises for the source rendition.
  double source_nominal_bandwidth_bps = 400e3;
  /// Arena backing the packaged segments (nullptr = plain heap). Owned by
  /// the caller (Study owns one per campaign shard) and must outlive the
  /// pipeline and every capture/response still holding a segment slice.
  util::BufferArena* arena = nullptr;
};

class LiveBroadcastPipeline {
 public:
  /// Called at origin when a sample arrives there (RTMP fan-out hook).
  using OriginSampleFn =
      std::function<void(TimePoint, const media::MediaSample&)>;

  LiveBroadcastPipeline(sim::Simulation& sim, const BroadcastInfo& info,
                        const PipelineConfig& cfg);

  /// Start producing at the current sim time; production stops when
  /// stop() is called or `run_for` elapses.
  void start(Duration run_for);
  void stop() { running_ = false; }

  /// Stop and free bulk buffers. The object must stay alive until the
  /// simulation has drained all events that may still reference it
  /// (Study keeps retired pipelines for exactly that reason); after
  /// retire() those events are no-ops.
  void retire() {
    running_ = false;
    subscribers_.clear();
    backlog_.clear();
    backlog_keyframes_ = 0;
    for (auto& r : renditions_) {
      r.edge.clear();
      r.segmenter.discard();  // the open partial segment's buffer
    }
  }

  /// --- RTMP side ---
  int subscribe(OriginSampleFn fn);
  void unsubscribe(int token);
  /// Decodable backlog: everything from the latest keyframe (what the
  /// origin bursts to a joining viewer), in decode order.
  const std::deque<media::MediaSample>& backlog() const { return backlog_; }
  const media::Sps& sps() const { return source_.video().sps(); }
  const media::Pps& pps() const { return source_.video().pps(); }

  /// --- HLS side ---
  struct EdgeSegment {
    hls::Segment segment;
    TimePoint available_at{};
  };
  /// Number of renditions (1 = source only; ladder adds more).
  std::size_t rendition_count() const { return renditions_.size(); }
  /// Segments of rendition `r` on the CDN edge. A deque so that
  /// references handed out stay valid as new segments are appended.
  const std::deque<EdgeSegment>& edge_segments(std::size_t r = 0) const {
    return renditions_[r].edge;
  }
  /// The media playlist of rendition `r` as the edge would serve it.
  hls::MediaPlaylist edge_playlist(TimePoint now, std::size_t r = 0) const;
  /// The master playlist listing every rendition.
  std::string master_playlist() const;
  /// The replay (VOD) playlist of a finished broadcast: every segment,
  /// #EXT-X-ENDLIST set. Replays are served from the same CDN edges —
  /// which is why the paper measured replay power == live power.
  hls::MediaPlaylist vod_playlist(std::size_t r = 0) const;
  /// Find an edge segment by URI ("seg_N.ts" = source rendition,
  /// "rK/seg_N.ts" = ladder rendition K).
  const EdgeSegment* find_segment(const std::string& uri) const;

  /// Broadcaster NTP epoch (wall-clock at pts 0).
  double epoch_s() const { return epoch_s_; }

  const BroadcastInfo& info() const { return info_; }

  std::uint64_t samples_produced() const { return samples_produced_; }

  /// Attach a metric/trace sink (nullptr = off): per-segment counter and
  /// a cut-to-edge delivery-latency histogram — the packaging + CDN
  /// transfer path that dominates HLS end-to-end delay (Fig. 5).
  void set_obs(obs::Obs* obs);

  /// Earliest simulation time at which no scheduled event can still
  /// reference this object (hiccup chains are bounded by stop_at, link
  /// deliveries by their busy horizons) — destroying it after this point
  /// is safe.
  TimePoint safe_destroy_at() const {
    TimePoint t = stop_at_;
    t = std::max(t, uplink_.busy_until());
    t = std::max(t, cdn_link_.busy_until());
    return t + cfg_.packaging_delay + cfg_.hiccup_max + seconds(10);
  }

 private:
  void produce_next();
  void on_sample_at_origin(TimePoint now, media::MediaSample sample);
  void schedule_hiccup();

  struct RenditionState {
    RenditionSpec spec;
    bool is_source = false;
    hls::Segmenter segmenter;
    std::deque<EdgeSegment> edge;
  };

  std::string segment_uri(std::size_t rendition,
                          std::uint64_t sequence) const;

  sim::Simulation& sim_;
  BroadcastInfo info_;
  PipelineConfig cfg_;
  Rng rng_;
  double epoch_s_ = 0;
  media::BroadcastSource source_;
  net::Link uplink_;
  net::Link cdn_link_;

  bool running_ = false;
  TimePoint stop_at_{};
  std::map<int, OriginSampleFn> subscribers_;
  int next_token_ = 1;
  std::deque<media::MediaSample> backlog_;
  int backlog_keyframes_ = 0;
  std::vector<RenditionState> renditions_;
  std::uint64_t samples_produced_ = 0;
  obs::Obs* obs_ = nullptr;
  obs::Counter* segments_shipped_ = nullptr;
  obs::Histogram* segment_delivery_ = nullptr;
};

/// Builds the encoder configs implied by a BroadcastInfo.
media::VideoConfig video_config_for(const BroadcastInfo& info);
media::AudioConfig audio_config_for(const BroadcastInfo& info);
media::ContentModelConfig content_config_for(const BroadcastInfo& info);

}  // namespace psc::service

// Campaign-global world, recorded once and replayed everywhere.
//
// A shared-world campaign must let sessions in different shards watch the
// same broadcast and contend for the same servers, while each shard keeps
// its own Simulation. The trick: the broadcast arrival / popularity / end
// process is *closed* — nothing a viewer does feeds back into it — so it
// can be simulated once up front on a private Simulation and frozen as an
// event log with per-epoch snapshots (sim::IntervalTimeline). A
// ReplayWorld is then a thin per-shard WorldView over that immutable
// timeline: query_rect(), find() and teleport() answer identically from
// any shard at any simulated time, because a broadcast's viewer curve is
// already a deterministic function of time (BroadcastInfo::viewers_at).
//
// GC semantics are preserved exactly: the recording World's observer
// reports the actual gc() erase times, so the "ended broadcast visible
// just before GC, gone just after" boundary replays bit-for-bit.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "service/world.h"
#include "sim/timeline.h"

namespace psc::service {

class WorldTimeline {
 public:
  using Log = sim::IntervalTimeline<BroadcastInfo>;

  /// Simulate the world of (`cfg`, `seed`) from t=0 to `horizon` — the
  /// exact process a live World runs, prepopulation included — and freeze
  /// it. `epoch_length` sets the snapshot granularity (the same epoch the
  /// load reconciliation uses).
  static std::shared_ptr<const WorldTimeline> record(const WorldConfig& cfg,
                                                     std::uint64_t seed,
                                                     Duration horizon,
                                                     Duration epoch_length);

  /// Broadcast present (added, not yet GC'd) at `t`, by id.
  const BroadcastInfo* find_at(const BroadcastId& id, TimePoint t) const;

  /// Visit every broadcast present at `t`, in recording (arrival) order.
  template <class Fn>
  void for_each_present(TimePoint t, Fn&& fn) const {
    log_.for_each_present(
        t, [&fn](const Log::Entry& e) { fn(e.value); });
  }

  const Log& log() const { return log_; }
  const WorldConfig& world_config() const { return cfg_; }
  Duration horizon() const { return horizon_; }
  std::size_t total_recorded() const { return log_.size(); }

 private:
  WorldTimeline(const WorldConfig& cfg, Duration horizon,
                Duration epoch_length)
      : cfg_(cfg), horizon_(horizon), log_(epoch_length) {}

  WorldConfig cfg_;
  Duration horizon_;
  Log log_;
  std::unordered_map<std::string, std::size_t> by_id_;
};

/// Per-shard WorldView over a shared recorded timeline. Holds the shard's
/// Simulation for the clock and a shared_ptr to the (immutable,
/// thread-safe) timeline; construction is cheap.
class ReplayWorld : public WorldView {
 public:
  ReplayWorld(sim::Simulation& sim,
              std::shared_ptr<const WorldTimeline> timeline)
      : sim_(sim), timeline_(std::move(timeline)) {}

  std::vector<const BroadcastInfo*> query_rect(
      const geo::GeoRect& rect,
      bool include_ended_replays = false) const override;

  const BroadcastInfo* find(const BroadcastId& id) const override;

  const BroadcastInfo* teleport(Rng& rng,
                                Duration min_remaining) const override;

  void for_each_live(
      const std::function<void(const BroadcastInfo&)>& fn) const override;

  std::size_t live_count() const override;

  const WorldConfig& config() const override {
    return timeline_->world_config();
  }

  const WorldTimeline& timeline() const { return *timeline_; }

 private:
  sim::Simulation& sim_;
  std::shared_ptr<const WorldTimeline> timeline_;
};

}  // namespace psc::service

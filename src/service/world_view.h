// Read-only view of the simulated Periscope world.
//
// Everything that consumes the world — the API server, the crawler, the
// campaign driver — only ever reads it: map queries, id lookups, Teleport.
// WorldView is that read side, with two implementations:
//   * World        — the live, event-driven world (arrivals, GC);
//   * ReplayWorld  — an immutable recorded timeline (world_timeline.h),
//                    shared by every shard of a shared-world campaign.
// The map semantics (zoom visibility, ranking, response cap, replay
// surfacing) live in map_query so both implementations answer queries
// identically by construction.
#pragma once

#include <functional>
#include <vector>

#include "geo/geo.h"
#include "service/broadcast.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace psc::service {

struct WorldConfig {
  PopulationConfig population;
  /// Mean number of concurrently live (discoverable) broadcasts.
  double target_concurrent = 2600;
  /// Number of geographic hotspots ("cities") and the Zipf skew of their
  /// popularity.
  int hotspot_count = 220;
  double hotspot_zipf_s = 1.15;
  /// Fraction of broadcasts placed uniformly at random instead of in a
  /// hotspot.
  double background_fraction = 0.12;
  /// Map API: max broadcasts returned per mapGeoBroadcastFeed call.
  std::size_t map_response_cap = 60;
  /// Zoom-dependent visibility: at a query area of `vis_full_area_deg2`
  /// or smaller every broadcast shows; for larger areas only a fraction
  /// ~ (full/area)^gamma does (deterministic per broadcast, monotone in
  /// zoom). This reproduces the paper's "the map usually shows only a
  /// fraction of the broadcasts available in a large region and more
  /// broadcasts become visible as the user zooms in". Broadcasts with
  /// >= vis_always_viewers current viewers are always shown (featured).
  double vis_full_area_deg2 = 400.0;
  double vis_gamma = 0.5;
  int vis_always_viewers = 100;
  /// Ended broadcasts are garbage collected this long after ending.
  Duration gc_grace = seconds(120);
};

class WorldView {
 public:
  virtual ~WorldView() = default;

  /// Map query: live broadcasts inside `rect`, ranked by current viewers,
  /// truncated at the response cap. With `include_ended_replays`,
  /// recently-ended broadcasts kept for replay also appear (the app's
  /// include_replay attribute; the paper's crawler forces it off to
  /// discover live broadcasts only).
  virtual std::vector<const BroadcastInfo*> query_rect(
      const geo::GeoRect& rect, bool include_ended_replays = false) const = 0;

  virtual const BroadcastInfo* find(const BroadcastId& id) const = 0;

  /// The "Teleport" button: a random live broadcast, weighted by current
  /// viewer count (joining as a random viewer does), optionally requiring
  /// a minimum remaining lifetime so a watch session can complete.
  virtual const BroadcastInfo* teleport(Rng& rng,
                                        Duration min_remaining) const = 0;

  /// Visit every currently live broadcast (private ones included — this is
  /// the service's ground truth, not the map's censored view).
  virtual void for_each_live(
      const std::function<void(const BroadcastInfo&)>& fn) const = 0;

  virtual std::size_t live_count() const = 0;

  virtual const WorldConfig& config() const = 0;
};

/// The map-response semantics shared by every WorldView implementation.
namespace map_query {

/// Deterministic per-broadcast value in [0,1) used for zoom visibility.
double visibility_hash(const BroadcastId& id);

/// Fraction of broadcasts a query of `rect`'s area reveals.
double visible_fraction(const geo::GeoRect& rect, const WorldConfig& cfg);

/// Does broadcast `b` appear in a map response for `rect` at `now`?
bool admit(const BroadcastInfo& b, const geo::GeoRect& rect,
           bool include_ended_replays, TimePoint now, const WorldConfig& cfg,
           double p_visible);

/// Rank by (current viewers desc, id asc) and truncate at the cap.
void rank_and_truncate(std::vector<const BroadcastInfo*>& hits,
                       TimePoint now, std::size_t cap);

/// Is `b` a Teleport candidate at `now`?
bool teleport_candidate(const BroadcastInfo& b, TimePoint now,
                        Duration min_remaining);

/// Teleport weight (+0.25 keeps unwatched broadcasts reachable, as
/// Teleport sometimes lands on them).
double teleport_weight(const BroadcastInfo& b, TimePoint now);

}  // namespace map_query

}  // namespace psc::service

#include "service/aggregate_audience.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace psc::service {

namespace {

/// One integration interval [a, b) of a single broadcast. Both endpoints
/// lie inside one epoch cell (the grid divides the epoch length, and
/// partial first/last intervals cannot straddle a grid point).
struct StepBook {
  std::size_t epoch = 0;
  double arrivals = 0;
  double departures = 0;
  double viewer_seconds = 0;
  double rtmp_viewer_seconds = 0;
  double hls_viewer_seconds = 0;
  double edge_requests = 0;
  double distinct_segments = 0;
};

}  // namespace

FlashCrowdSchedule make_flash_crowd_schedule(const AggregateConfig& cfg) {
  if (!cfg.schedule_text.empty()) {
    auto parsed = FlashCrowdSchedule::parse(cfg.schedule_text);
    if (parsed) return std::move(parsed).value();
    std::fprintf(stderr,
                 "psc: flash-crowd schedule rejected (%s); generating from "
                 "seed %llu instead\n",
                 parsed.error().message.c_str(),
                 static_cast<unsigned long long>(cfg.schedule_seed));
  }
  return FlashCrowdSchedule::generate(cfg.schedule_seed, cfg.gen);
}

AggregateAudience::AggregateAudience(
    std::shared_ptr<const WorldTimeline> timeline,
    FlashCrowdSchedule schedule, const MediaServerPool& servers,
    const AggregateConfig& cfg, Duration epoch_length)
    : schedule_(std::move(schedule)),
      cfg_(cfg),
      epoch_length_(epoch_length.count() > 0 ? epoch_length : seconds(300)),
      ledger_(epoch_length_),
      timeline_(std::move(timeline)) {
  // Snap the step so it divides the epoch length: grid points (and hence
  // epoch boundaries) are never inside an integration interval.
  const double epoch_s = to_s(epoch_length_);
  double step_s = to_s(cfg_.step);
  if (step_s <= 0 || step_s > epoch_s) step_s = epoch_s;
  step_ = seconds(epoch_s / std::ceil(epoch_s / step_s));
  horizon_ = timeline_->horizon();
  edge_ips_ = {servers.hls_edges()[0].ip, servers.hls_edges()[1].ip};
  resolve_spikes(*timeline_);
  integrate(servers);
}

void AggregateAudience::resolve_spikes(const WorldTimeline& timeline) {
  const auto& spikes = schedule_.spikes();
  spike_targets_.assign(spikes.size(), BroadcastId());
  for (std::size_t i = 0; i < spikes.size(); ++i) {
    const Spike& s = spikes[i];
    // Candidates: broadcasts live (and public) when the crowd arrives,
    // ranked by popularity — the Twitch study's channel skew: spikes hit
    // the head of the popularity distribution.
    std::vector<const BroadcastInfo*> live;
    timeline.for_each_present(s.start, [&](const BroadcastInfo& b) {
      if (!b.is_private && b.live_at(s.start)) live.push_back(&b);
    });
    if (live.empty()) continue;
    std::sort(live.begin(), live.end(),
              [](const BroadcastInfo* a, const BroadcastInfo* b) {
                if (a->peak_viewers != b->peak_viewers) {
                  return a->peak_viewers > b->peak_viewers;
                }
                return a->id < b->id;
              });
    const std::size_t rank =
        static_cast<std::size_t>(std::max(0, s.channel_rank)) % live.size();
    spike_targets_[i] = live[rank]->id;
    spikes_by_broadcast_[live[rank]->id].push_back(i);
  }
}

double AggregateAudience::target_at(const BroadcastPlan& plan,
                                    TimePoint t) const {
  const BroadcastInfo& b = plan.entry->value;
  if (!b.live_at(t)) return 0;
  double v = cfg_.baseline_multiplier * b.viewers_at(t);
  for (std::size_t i : plan.spikes) {
    v += schedule_.spikes()[i].viewers_at(t);
  }
  return v;
}

void AggregateAudience::integrate(const MediaServerPool& servers) {
  const double step_s = to_s(step_);
  const double horizon_s = to_s(horizon_);
  const std::size_t n_epochs =
      static_cast<std::size_t>(horizon_s / to_s(epoch_length_)) + 1;
  epochs_.assign(n_epochs, AggregateEpoch{});
  // Campaign-wide concurrent population at every grid point, for the
  // per-epoch / campaign peaks.
  std::vector<double> grid_pop(
      static_cast<std::size_t>(horizon_s / step_s) + 2, 0.0);

  for (const auto& entry : timeline_->log().entries()) {
    const BroadcastInfo& b = entry.value;
    const bool spiked = spikes_by_broadcast_.count(b.id) > 0;
    if (b.is_private || (b.peak_viewers <= 0 && !spiked)) continue;
    const double lo = std::max(0.0, to_s(b.start_time));
    const double hi = std::min(to_s(b.end_time()), horizon_s);
    if (hi <= lo) continue;

    BroadcastPlan plan;
    plan.entry = &entry;
    if (spiked) plan.spikes = spikes_by_broadcast_.at(b.id);
    plan.origin_ip = servers.rtmp_origin_for(b.location, b.id).ip;

    // Euler steps on the global grid, with partial first/last intervals.
    const double per_viewer_rate = (b.video_bitrate + b.audio_bitrate) / 8;
    const double seg_s = std::max(0.1, cfg_.segment_duration_s);
    const double seg_bytes = seg_s * per_viewer_rate;
    const int thr = std::max(0, cfg_.hls_viewer_threshold);
    std::vector<BroadcastEpoch> book;
    std::map<std::size_t, StepBook> steps;  // epoch -> accumulated flows
    double v = 0;
    double a = lo;
    std::size_t cur_epoch = ledger_.epoch_of(time_at(lo));
    book.push_back(BroadcastEpoch{cur_epoch, 0, 0, v, v});
    std::size_t k = static_cast<std::size_t>(lo / step_s) + 1;
    bool done = false;
    while (!done) {
      double bnd = step_s * static_cast<double>(k);
      if (bnd >= hi) {
        bnd = hi;
        done = true;
      }
      const double dt = bnd - a;
      if (dt <= 0) {
        ++k;
        continue;
      }
      // Target at the far endpoint. When the broadcast ends inside the
      // horizon, live_at() turns the target to 0 there, which flushes
      // the remaining population as departures; a horizon cut instead
      // leaves the population standing (pop_end of the last epoch).
      const bool horizon_cut = done && hi >= horizon_s &&
                               to_s(b.end_time()) > horizon_s;
      const double target =
          horizon_cut ? v : target_at(plan, time_at(bnd));
      const double churn =
          cfg_.mean_watch_s > 0 ? v * dt / cfg_.mean_watch_s : 0;
      const double net = target - v;
      const double arrivals = churn + std::max(0.0, net);
      const double departures = churn + std::max(0.0, -net);
      const double v_next = target;
      const double v_avg = 0.5 * (v + v_next);
      const double rtmp_c = std::min(v_avg, static_cast<double>(thr));
      const double hls_c = v_avg - rtmp_c;

      StepBook& sb = steps[cur_epoch];
      sb.epoch = cur_epoch;
      sb.arrivals += arrivals;
      sb.departures += departures;
      sb.viewer_seconds += v_avg * dt;
      sb.rtmp_viewer_seconds += rtmp_c * dt;
      sb.hls_viewer_seconds += hls_c * dt;
      sb.edge_requests += hls_c * dt / seg_s;
      // The edge caches: while any overflow audience exists, each
      // segment is fetched from the origin once per edge and served from
      // cache to everyone else.
      if (hls_c > 0) sb.distinct_segments += dt / seg_s;
      BroadcastEpoch& be = book.back();
      be.arrivals += arrivals;
      be.departures += departures;
      be.pop_end = v_next;

      v = v_next;
      a = bnd;
      if (!done) {
        // Grid point: record the campaign-wide population, and open a new
        // epoch row when this point is an epoch boundary.
        grid_pop[k] += v;
        const std::size_t e = ledger_.epoch_of(time_at(bnd));
        if (e != cur_epoch) {
          cur_epoch = e;
          book.push_back(BroadcastEpoch{cur_epoch, 0, 0, v, v});
        }
        ++k;
      }
    }

    // Fold this broadcast into the campaign-wide epochs and the ledger.
    for (const BroadcastEpoch& be : book) {
      if (be.epoch >= epochs_.size()) epochs_.resize(be.epoch + 1);
      AggregateEpoch& ae = epochs_[be.epoch];
      ae.arrivals += be.arrivals;
      ae.departures += be.departures;
      ae.pop_begin += be.pop_begin;
      ae.pop_end += be.pop_end;
      total_arrivals_ += be.arrivals;
    }
    per_broadcast_[b.id] = std::move(book);
    for (const auto& [e, sb] : steps) {
      if (e >= epochs_.size()) epochs_.resize(e + 1);
      AggregateEpoch& ae = epochs_[e];
      const double hits =
          std::max(0.0, sb.edge_requests - 2 * sb.distinct_segments);
      const double bytes = sb.viewer_seconds * per_viewer_rate;
      ae.viewer_seconds += sb.viewer_seconds;
      ae.rtmp_viewer_seconds += sb.rtmp_viewer_seconds;
      ae.hls_viewer_seconds += sb.hls_viewer_seconds;
      ae.edge_requests += sb.edge_requests;
      ae.edge_hits += hits;
      ae.origin_requests += 2 * sb.distinct_segments;
      ae.bytes += bytes;
      total_viewer_seconds_ += sb.viewer_seconds;

      // Ledger contributions, same key space as the session ledgers.
      LoadAccount origin;
      origin.session_seconds = sb.rtmp_viewer_seconds;
      origin.sessions = cfg_.mean_watch_s > 0
                            ? sb.rtmp_viewer_seconds / cfg_.mean_watch_s
                            : 0;
      origin.bytes = sb.rtmp_viewer_seconds * per_viewer_rate +
                     2 * sb.distinct_segments * seg_bytes;
      origin.requests = 2 * sb.distinct_segments;
      if (origin.session_seconds > 0 || origin.requests > 0) {
        ledger_.add_raw(plan.origin_ip, e, origin);
      }
      if (sb.hls_viewer_seconds > 0) {
        LoadAccount edge;
        edge.session_seconds = sb.hls_viewer_seconds / 2;
        edge.sessions = cfg_.mean_watch_s > 0
                            ? edge.session_seconds / cfg_.mean_watch_s
                            : 0;
        edge.bytes = sb.hls_viewer_seconds * per_viewer_rate / 2;
        edge.requests = sb.edge_requests / 2;
        ledger_.add_raw(edge_ips_[0], e, edge);
        ledger_.add_raw(edge_ips_[1], e, edge);
      }
    }
    plans_.emplace(b.id, std::move(plan));
  }

  // Per-epoch and campaign peaks from the grid populations.
  for (std::size_t k = 0; k < grid_pop.size(); ++k) {
    const double t = step_s * static_cast<double>(k);
    if (t > horizon_s) break;
    const std::size_t e = ledger_.epoch_of(time_at(t));
    if (e >= epochs_.size()) break;
    epochs_[e].peak_concurrent =
        std::max(epochs_[e].peak_concurrent, grid_pop[k]);
    peak_concurrent_ = std::max(peak_concurrent_, grid_pop[k]);
  }
}

double AggregateAudience::viewers_at(const BroadcastId& id,
                                     TimePoint t) const {
  auto it = plans_.find(id);
  if (it == plans_.end()) return 0;
  return target_at(it->second, t);
}

double AggregateAudience::extra_viewers_at(const BroadcastInfo& b,
                                           TimePoint t) const {
  auto it = plans_.find(b.id);
  if (it == plans_.end()) return 0;
  return std::max(0.0, target_at(it->second, t) - b.viewers_at(t));
}

}  // namespace psc::service

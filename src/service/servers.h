// Media server pools.
//
// The paper found 87 distinct Amazon EC2 servers delivering RTMP streams
// (with at least one in every continent except Africa, chosen by
// broadcaster location) and exactly two HLS edge IPs (Fastly CDN, one in
// Europe and one in San Francisco). This module reproduces those pools.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "geo/geo.h"
#include "service/load.h"
#include "util/rng.h"

namespace psc::service {

struct MediaServer {
  std::string ip;
  std::string hostname;
  std::string region;
  geo::GeoPoint location;
};

class MediaServerPool {
 public:
  explicit MediaServerPool(std::uint64_t seed);

  /// The RTMP origin for a broadcaster: nearest region, then a
  /// deterministic pick inside the region (load balancing by id hash).
  const MediaServer& rtmp_origin_for(const geo::GeoPoint& broadcaster,
                                     const std::string& broadcast_id) const;

  /// The HLS edge a viewer fetches from (two IPs globally).
  const MediaServer& hls_edge_for(std::size_t viewer_index) const;

  const std::vector<MediaServer>& rtmp_origins() const { return origins_; }
  const std::array<MediaServer, 2>& hls_edges() const { return edges_; }

  /// Per-epoch load account book for this pool, keyed by server ip.
  /// Sessions contribute as they complete; a shared-world campaign's
  /// scheduler merges every shard's book into the campaign-global
  /// EpochLoadBoard at each epoch boundary.
  EpochLoadLedger& load_ledger() { return ledger_; }
  const EpochLoadLedger& load_ledger() const { return ledger_; }

 private:
  std::vector<MediaServer> origins_;
  std::array<MediaServer, 2> edges_;
  EpochLoadLedger ledger_;
};

}  // namespace psc::service

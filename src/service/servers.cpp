#include "service/servers.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/strings.h"

namespace psc::service {

namespace {

struct RegionSpec {
  const char* name;
  double lat, lon;
  int servers;
};

// Every continent except Africa (paper §5): EC2-style regions.
constexpr RegionSpec kRegions[] = {
    {"us-west-1", 37.4, -121.9, 18},    {"us-east-1", 39.0, -77.5, 18},
    {"eu-central-1", 50.1, 8.7, 16},    {"eu-west-1", 53.3, -6.3, 10},
    {"ap-northeast-1", 35.6, 139.7, 9}, {"ap-southeast-1", 1.3, 103.8, 7},
    {"ap-southeast-2", -33.9, 151.2, 5},{"sa-east-1", -23.5, -46.6, 4},
};

}  // namespace

MediaServerPool::MediaServerPool(std::uint64_t seed) {
  Rng rng(seed);
  int host = 10;
  for (const RegionSpec& r : kRegions) {
    for (int i = 0; i < r.servers; ++i) {
      MediaServer s;
      s.region = r.name;
      s.location = geo::GeoPoint{r.lat, r.lon};
      s.ip = strf("54.%d.%d.%d", static_cast<int>(rng.uniform_int(64, 95)),
                  static_cast<int>(rng.uniform_int(0, 255)), host++);
      s.hostname = strf("vidman-%s-%d.periscope.tv", r.name, i);
      origins_.push_back(std::move(s));
    }
  }
  edges_[0] = MediaServer{"151.101.0.51", "hls-eu.fastly.periscope.tv",
                          "fastly-eu", geo::GeoPoint{50.1, 8.7}};
  edges_[1] = MediaServer{"151.101.1.51", "hls-sf.fastly.periscope.tv",
                          "fastly-sf", geo::GeoPoint{37.8, -122.4}};
}

const MediaServer& MediaServerPool::rtmp_origin_for(
    const geo::GeoPoint& broadcaster, const std::string& broadcast_id) const {
  // Nearest region by great-circle distance, then a deterministic pick
  // among that region's servers.
  double best = 1e18;
  std::string best_region;
  for (const RegionSpec& r : kRegions) {
    const double d =
        geo::distance_km(broadcaster, geo::GeoPoint{r.lat, r.lon});
    if (d < best) {
      best = d;
      best_region = r.name;
    }
  }
  std::vector<const MediaServer*> in_region;
  for (const MediaServer& s : origins_) {
    if (s.region == best_region) in_region.push_back(&s);
  }
  const std::size_t idx =
      std::hash<std::string>{}(broadcast_id) % in_region.size();
  return *in_region[idx];
}

const MediaServer& MediaServerPool::hls_edge_for(
    std::size_t viewer_index) const {
  return edges_[viewer_index % edges_.size()];
}

}  // namespace psc::service

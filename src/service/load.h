// Per-epoch server load accounts.
//
// The paper's delivery infrastructure is small and shared: 87 RTMP origins
// and exactly two HLS edges serve every viewer. A campaign therefore
// couples sessions through server load. In a shared-world campaign the
// coupling is reconciled in epochs: every shard accumulates its sessions'
// contributions into a local EpochLoadLedger; at each epoch boundary the
// scheduler merges all ledgers — in shard order, so the result is
// deterministic for any thread count — into the campaign-global
// EpochLoadBoard; and sessions starting in epoch e read the merged load of
// epoch e-1 (one epoch of lag buys lock-free parallel reads).
//
// Epoch length is a model parameter like shard_size: changing it changes
// results; changing the thread count does not.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/units.h"

namespace psc::service {

struct EpochLoadConfig {
  /// Campaign time is cut into epochs of this length.
  Duration epoch_length = seconds(300);
  /// Load -> latency model: extra one-way serving latency per average
  /// concurrent session the same server carried in the previous epoch,
  /// capped. Zero disables the feedback (load is then recorded but free).
  Duration latency_per_session = millis(3);
  Duration max_extra_latency = millis(400);
};

/// Aggregated load on one server during one epoch.
struct LoadAccount {
  double session_seconds = 0;  // viewing time overlapping the epoch
  double sessions = 0;         // sessions touching the epoch (weighted)
  double bytes = 0;            // media bytes delivered
  double requests = 0;         // requests served
};

/// Mutable, single-writer load account book (one per shard / per server
/// component), bucketed by epoch index.
class EpochLoadLedger {
 public:
  explicit EpochLoadLedger(Duration epoch_length = seconds(300));

  /// Resets the ledger (epoch boundaries move, old buckets are invalid).
  void set_epoch_length(Duration len);
  Duration epoch_length() const { return epoch_length_; }
  std::size_t epoch_of(TimePoint t) const;

  /// Contribute a session on `server_ip` spanning [begin, end): every
  /// overlapped epoch receives the overlap in session-seconds and a
  /// proportional share of `bytes`; `weight` scales both (an HLS session
  /// striping two edges contributes 0.5 to each).
  void add_session(const std::string& server_ip, TimePoint begin,
                   TimePoint end, double weight, double bytes);

  /// Contribute one served request at an instant.
  void add_request(const std::string& server_ip, TimePoint at, double bytes);

  /// Fold a precomputed account delta directly into epoch `e` — the
  /// fluid AggregateAudience books whole viewer populations this way
  /// (session_seconds/sessions/requests are then fractional aggregates,
  /// not individual sessions).
  void add_raw(const std::string& server_ip, std::size_t e,
               const LoadAccount& delta);

  /// nullptr when the server had no load in that epoch.
  const LoadAccount* account(const std::string& server_ip,
                             std::size_t epoch) const;
  /// nullptr when the epoch is beyond the last contribution.
  const std::map<std::string, LoadAccount>* epoch(std::size_t e) const;
  std::size_t epoch_count() const { return epochs_.size(); }
  void clear() { epochs_.clear(); }

  /// Canonical text dump (every epoch, every server, %.17g): two ledgers
  /// are byte-identical iff their contents are. Used by determinism and
  /// sample-rate-invariance tests.
  std::string debug_text() const;

 private:
  LoadAccount& at(const std::string& server_ip, std::size_t e);

  Duration epoch_length_;
  std::vector<std::map<std::string, LoadAccount>> epochs_;
};

/// Campaign-global merged load. Written only by the epoch scheduler at
/// barriers (merge_epoch in shard order); read lock-free by every shard,
/// which only ever asks about already-merged (immutable) epochs.
class EpochLoadBoard {
 public:
  explicit EpochLoadBoard(Duration epoch_length = seconds(300))
      : epoch_length_(epoch_length) {}

  Duration epoch_length() const { return epoch_length_; }
  std::size_t epoch_of(TimePoint t) const;

  /// Fold `ledger`'s bucket for epoch `e` into the board. Call once per
  /// shard per epoch, in shard order, with no concurrent readers.
  void merge_epoch(std::size_t e, const EpochLoadLedger& ledger);

  std::size_t epochs_merged() const { return merged_.size(); }

  const LoadAccount* account(const std::string& server_ip,
                             std::size_t e) const;
  /// Average concurrent sessions on `server_ip` during epoch `e`.
  double avg_concurrent(const std::string& server_ip, std::size_t e) const;
  /// The load a session starting at `t` runs against: the previous
  /// epoch's merged average concurrency (0 in epoch 0 or when that epoch
  /// has not been merged).
  double previous_epoch_concurrent(const std::string& server_ip,
                                   TimePoint t) const;
  /// Load -> extra one-way serving latency for a session starting at `t`.
  Duration penalty(const std::string& server_ip, TimePoint t,
                   const EpochLoadConfig& cfg) const;

 private:
  Duration epoch_length_;
  std::vector<std::map<std::string, LoadAccount>> merged_;
};

}  // namespace psc::service

#include "service/flash_crowd.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/rng.h"
#include "util/strings.h"

namespace psc::service {

namespace {

constexpr const char* kHeader = "# psc-flashcrowd v1";

struct ShapeTraits {
  const char* name;
  /// Share of generated spikes of this shape (relative weight).
  double weight;
  double rise_lo, rise_hi;  // seconds
  double hold_lo, hold_hi;
  double tau_lo, tau_hi;
};

// Raids dominate event-driven surges; celebrity-goes-live events are
// rarer but hold their audience; organic build-ups are the background.
constexpr ShapeTraits kShapes[kSpikeShapeCount] = {
    {"raid", 3, 3, 20, 30, 180, 60, 240},
    {"celebrity_live", 1, 20, 90, 300, 900, 180, 600},
    {"organic", 2, 90, 360, 60, 360, 240, 720},
};

/// Snap a generated value onto a decimal grid (1/scale) so the %.9g text
/// form recovers the exact double on parse — same trick as fault::Plan.
double snap(double v, double scale) { return std::round(v * scale) / scale; }

Error schedule_error(std::size_t line, std::string message) {
  return make_error("flashcrowd",
                    strf("line %zu: %s", line, message.c_str()));
}

bool parse_number(std::string_view s, double* out) {
  if (s.empty()) return false;
  const std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

}  // namespace

const char* spike_shape_name(SpikeShape s) {
  return kShapes[static_cast<int>(s)].name;
}

bool spike_shape_from_name(std::string_view name, SpikeShape* out) {
  for (int i = 0; i < kSpikeShapeCount; ++i) {
    if (name == kShapes[i].name) {
      *out = static_cast<SpikeShape>(i);
      return true;
    }
  }
  return false;
}

double Spike::viewers_at(TimePoint t) const {
  if (t < start || peak_viewers <= 0) return 0;
  const double u = to_s(t - start);
  const double rise_s = to_s(rise);
  if (u < rise_s) return peak_viewers * (u / rise_s);
  const double after_rise = u - rise_s;
  const double hold_s = to_s(hold);
  if (after_rise < hold_s) return peak_viewers;
  const double tau_s = to_s(decay_tau);
  if (tau_s <= 0) return 0;
  return peak_viewers * std::exp(-(after_rise - hold_s) / tau_s);
}

FlashCrowdSchedule::FlashCrowdSchedule(std::vector<Spike> spikes)
    : spikes_(std::move(spikes)) {
  std::sort(spikes_.begin(), spikes_.end(), [](const Spike& a,
                                               const Spike& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.shape != b.shape) return a.shape < b.shape;
    if (a.channel_rank != b.channel_rank) {
      return a.channel_rank < b.channel_rank;
    }
    if (a.peak_viewers != b.peak_viewers) {
      return a.peak_viewers < b.peak_viewers;
    }
    if (a.rise != b.rise) return a.rise < b.rise;
    if (a.hold != b.hold) return a.hold < b.hold;
    return a.decay_tau < b.decay_tau;
  });
}

FlashCrowdSchedule FlashCrowdSchedule::generate(
    std::uint64_t seed, const FlashCrowdGenConfig& cfg) {
  Rng root(seed);
  std::vector<Spike> out;
  const double horizon_s = std::max(0.0, to_s(cfg.horizon));
  double weight_total = 0;
  for (const ShapeTraits& t : kShapes) weight_total += t.weight;
  for (int i = 0; i < kSpikeShapeCount; ++i) {
    // Per-shape forked stream: changing one shape's count never perturbs
    // the spikes of another.
    Rng rng = root.fork(static_cast<std::uint64_t>(i) + 1);
    const ShapeTraits& t = kShapes[i];
    const long count = std::lround(cfg.spikes_per_1800s * horizon_s /
                                   1800.0 * t.weight / weight_total);
    for (long n = 0; n < count; ++n) {
      Spike s;
      s.shape = static_cast<SpikeShape>(i);
      s.start = time_at(snap(rng.uniform(0, horizon_s), 1000));
      s.peak_viewers = snap(
          std::min(cfg.peak_cap, rng.pareto(cfg.peak_xm, cfg.peak_alpha)),
          1);
      s.rise = seconds(snap(rng.uniform(t.rise_lo, t.rise_hi), 1000));
      s.hold = seconds(snap(rng.uniform(t.hold_lo, t.hold_hi), 1000));
      s.decay_tau = seconds(snap(rng.uniform(t.tau_lo, t.tau_hi), 1000));
      s.channel_rank = static_cast<int>(
          rng.zipf(std::max(1, cfg.max_rank), cfg.rank_zipf_s) - 1);
      out.push_back(s);
    }
  }
  return FlashCrowdSchedule(std::move(out));
}

Result<FlashCrowdSchedule> FlashCrowdSchedule::parse(std::string_view text) {
  // Hard cap so a pathological (fuzzed) input cannot balloon memory.
  constexpr std::size_t kMaxSpikes = 100000;
  std::vector<Spike> spikes;
  std::size_t line_no = 0;
  bool saw_header = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!saw_header) {
      if (line != kHeader) {
        return schedule_error(line_no,
                              strf("expected header '%s'", kHeader));
      }
      saw_header = true;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;

    // spike <shape> key=value...
    std::vector<std::string_view> tokens;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && line[i] == ' ') ++i;
      std::size_t j = i;
      while (j < line.size() && line[j] != ' ') ++j;
      if (j > i) tokens.push_back(line.substr(i, j - i));
      i = j;
    }
    if (tokens.empty()) continue;
    if (tokens[0] != "spike") {
      return schedule_error(line_no, strf("unknown directive '%.*s'",
                                          static_cast<int>(tokens[0].size()),
                                          tokens[0].data()));
    }
    if (tokens.size() < 2) {
      return schedule_error(line_no, "spike needs a shape");
    }
    Spike s;
    if (!spike_shape_from_name(tokens[1], &s.shape)) {
      return schedule_error(line_no, strf("unknown spike shape '%.*s'",
                                          static_cast<int>(tokens[1].size()),
                                          tokens[1].data()));
    }
    bool have_start = false, have_peak = false;
    for (std::size_t k = 2; k < tokens.size(); ++k) {
      const std::string_view tok = tokens[k];
      const std::size_t eq = tok.find('=');
      if (eq == std::string_view::npos) {
        return schedule_error(line_no, "expected key=value");
      }
      const std::string_view key = tok.substr(0, eq);
      double v = 0;
      if (!parse_number(tok.substr(eq + 1), &v)) {
        return schedule_error(line_no, strf("bad number for '%.*s'",
                                            static_cast<int>(key.size()),
                                            key.data()));
      }
      if (key == "start") {
        if (v < 0) return schedule_error(line_no, "start must be >= 0");
        s.start = time_at(v);
        have_start = true;
      } else if (key == "peak") {
        if (v < 0) return schedule_error(line_no, "peak must be >= 0");
        s.peak_viewers = v;
        have_peak = true;
      } else if (key == "rise") {
        if (v < 0) return schedule_error(line_no, "rise must be >= 0");
        s.rise = seconds(v);
      } else if (key == "hold") {
        if (v < 0) return schedule_error(line_no, "hold must be >= 0");
        s.hold = seconds(v);
      } else if (key == "tau") {
        if (v < 0) return schedule_error(line_no, "tau must be >= 0");
        s.decay_tau = seconds(v);
      } else if (key == "rank") {
        if (v != std::floor(v) || v < 0 || v > 1e6) {
          return schedule_error(line_no, "rank must be an integer >= 0");
        }
        s.channel_rank = static_cast<int>(v);
      } else {
        return schedule_error(line_no, strf("unknown key '%.*s'",
                                            static_cast<int>(key.size()),
                                            key.data()));
      }
    }
    if (!have_start || !have_peak) {
      return schedule_error(line_no, "spike needs start= and peak=");
    }
    if (spikes.size() >= kMaxSpikes) {
      return schedule_error(line_no, "too many spikes");
    }
    spikes.push_back(s);
  }
  if (!saw_header) return make_error("flashcrowd", "empty schedule text");
  return FlashCrowdSchedule(std::move(spikes));
}

std::string FlashCrowdSchedule::to_text() const {
  std::string out = kHeader;
  out += '\n';
  for (const Spike& s : spikes_) {
    out += strf(
        "spike %s start=%.9g peak=%.9g rise=%.9g hold=%.9g tau=%.9g "
        "rank=%d\n",
        spike_shape_name(s.shape), to_s(s.start), s.peak_viewers,
        to_s(s.rise), to_s(s.hold), to_s(s.decay_tau), s.channel_rank);
  }
  return out;
}

}  // namespace psc::service

// The Fastly-like CDN edge as an HTTP server.
//
// HLS clients speak real HTTP to this: GET the master/media/VOD playlist,
// GET the MPEG-TS segments. A segment URL answers 404 until the packaged
// segment has actually reached the edge — which is exactly the freshness
// behaviour that bounds HLS delivery latency in Fig. 5.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "http/http.h"
#include "obs/bundle.h"
#include "service/load.h"
#include "service/pipeline.h"

namespace psc::service {

class CdnEdge {
 public:
  explicit CdnEdge(std::string host) : host_(std::move(host)) {}

  /// Make a broadcast's content available at /hls/<broadcast_id>/...
  /// The pipeline must outlive its registration.
  void attach(const std::string& broadcast_id,
              const LiveBroadcastPipeline* pipeline) {
    pipelines_[broadcast_id] = pipeline;
  }
  void detach(const std::string& broadcast_id) {
    pipelines_.erase(broadcast_id);
  }

  /// Serve one request at edge-local time `now`:
  ///   GET /hls/<id>/master.m3u8          — variant list
  ///   GET /hls/<id>/playlist.m3u8        — live media playlist (source)
  ///   GET /hls/<id>/r<k>/playlist.m3u8   — ladder rendition k
  ///   GET /hls/<id>/vod.m3u8             — replay playlist
  ///   GET /hls/<id>/seg_<n>.ts           — source segment
  ///   GET /hls/<id>/r<k>/seg_<n>.ts      — rendition segment
  http::Response handle(const http::Request& req, TimePoint now) const;

  const std::string& host() const { return host_; }

  /// Per-epoch account of the requests and media bytes this edge served,
  /// keyed by the edge's own host. handle() is logically const (serving a
  /// playlist does not change the edge), so the book is mutable.
  void set_load_epoch_length(Duration len) { ledger_.set_epoch_length(len); }
  const EpochLoadLedger& load_ledger() const { return ledger_; }

  /// Attach a metric sink (may be nullptr = off). Served requests are
  /// counted as hits; segment requests answered 404 because the segment
  /// has not reached the edge yet are the "freshness misses" that bound
  /// HLS delivery latency (Fig. 5), and are counted separately.
  void set_obs(obs::Obs* obs);

  /// Fault injection: when the hook returns true for a request's time,
  /// the edge answers 503 (an edge outage).
  void set_fault_hook(std::function<bool(TimePoint)> hook) {
    fault_hook_ = std::move(hook);
  }

 private:
  std::function<bool(TimePoint)> fault_hook_;
  std::string host_;
  std::map<std::string, const LiveBroadcastPipeline*> pipelines_;
  mutable EpochLoadLedger ledger_;
  obs::Counter* requests_ = nullptr;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
};

}  // namespace psc::service

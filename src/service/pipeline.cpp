#include "service/pipeline.h"

#include <algorithm>

#include "media/transcode.h"

#include "util/strings.h"

namespace psc::service {

media::VideoConfig video_config_for(const BroadcastInfo& info) {
  media::VideoConfig v;
  if (info.portrait) {
    v.width = 320;
    v.height = 568;
  } else {
    v.width = 568;
    v.height = 320;
  }
  v.fps = 30.0;
  v.target_bitrate = info.video_bitrate;
  v.gop = info.gop;
  v.gop_length = 36;
  v.frame_loss_prob = info.frame_loss_prob;
  return v;
}

media::AudioConfig audio_config_for(const BroadcastInfo& info) {
  media::AudioConfig a;
  a.target_bitrate = info.audio_bitrate;
  return a;
}

media::ContentModelConfig content_config_for(const BroadcastInfo& info) {
  media::ContentModelConfig c;
  c.content_class = info.content;
  return c;
}

LiveBroadcastPipeline::LiveBroadcastPipeline(sim::Simulation& sim,
                                             const BroadcastInfo& info,
                                             const PipelineConfig& cfg)
    : sim_(sim),
      info_(info),
      cfg_(cfg),
      rng_(info.seed),
      epoch_s_(to_s(sim.now())),
      source_(video_config_for(info), audio_config_for(info),
              content_config_for(info), to_s(sim.now()), Rng(info.seed)),
      uplink_(sim, info.uplink_bitrate, cfg.uplink_latency),
      cdn_link_(sim, cfg.origin_to_cdn_rate, cfg.origin_to_cdn_latency) {
  uplink_.set_noise(rng_.fork(3), seconds(2), 0.75, 1.1);
  // Rendition 0 is always the untouched source; the ladder follows.
  RenditionState source_rendition;
  source_rendition.spec.name = "source";
  source_rendition.spec.nominal_bandwidth_bps =
      cfg_.source_nominal_bandwidth_bps;
  source_rendition.is_source = true;
  source_rendition.segmenter = hls::Segmenter(cfg_.segment_target);
  source_rendition.segmenter.set_arena(cfg_.arena);
  renditions_.push_back(std::move(source_rendition));
  for (const RenditionSpec& spec : cfg_.transcode_ladder) {
    RenditionState r;
    r.spec = spec;
    r.segmenter = hls::Segmenter(cfg_.segment_target);
    r.segmenter.set_arena(cfg_.arena);
    renditions_.push_back(std::move(r));
  }
}

void LiveBroadcastPipeline::set_obs(obs::Obs* obs) {
  obs_ = obs;
  if (obs == nullptr) {
    segments_shipped_ = nullptr;
    segment_delivery_ = nullptr;
    return;
  }
  segments_shipped_ = &obs->metrics.counter("pipeline_segments_total");
  segment_delivery_ = &obs->metrics.histogram("pipeline_segment_delivery_s");
}

std::string LiveBroadcastPipeline::segment_uri(
    std::size_t rendition, std::uint64_t sequence) const {
  if (rendition == 0) {
    return strf("seg_%llu.ts", static_cast<unsigned long long>(sequence));
  }
  return strf("r%zu/seg_%llu.ts", rendition,
              static_cast<unsigned long long>(sequence));
}

void LiveBroadcastPipeline::start(Duration run_for) {
  running_ = true;
  stop_at_ = sim_.now() + run_for;
  produce_next();
  schedule_hiccup();
}

void LiveBroadcastPipeline::schedule_hiccup() {
  if (cfg_.hiccup_rate_per_min <= 0) return;
  const Duration gap =
      seconds(rng_.exponential(cfg_.hiccup_rate_per_min / 60.0));
  // A hiccup after production ends is pointless — and not scheduling it
  // bounds this object's event horizon (see safe_destroy_at()).
  if (sim_.now() + gap >= stop_at_) return;
  sim_.schedule_after(gap, [this] {
    if (!running_ || sim_.now() >= stop_at_) return;
    const BitRate normal = info_.uplink_bitrate;
    const Duration dur = seconds(
        rng_.uniform(to_s(cfg_.hiccup_min), to_s(cfg_.hiccup_max)));
    uplink_.set_rate(normal * 0.05);
    sim_.schedule_after(dur, [this, normal] { uplink_.set_rate(normal); });
    schedule_hiccup();
  });
}

void LiveBroadcastPipeline::produce_next() {
  if (!running_ || sim_.now() >= stop_at_) return;
  media::MediaSample sample = source_.next_sample();
  ++samples_produced_;

  // The sample finishes encoding at epoch + dts + encode latency; ship it
  // up the broadcaster link then.
  const TimePoint ready =
      time_at(epoch_s_) + sample.dts + cfg_.encode_latency;
  const Duration next_gap = ready <= sim_.now() ? Duration{0}
                                                : ready - sim_.now();
  sim_.schedule_after(next_gap, [this, sample = std::move(sample)]() mutable {
    if (!running_) return;
    // Model the upload cost with the sample's own size (pacing-only
    // send); metadata rides along in the closure rather than being
    // re-parsed at the origin.
    const std::size_t wire_size = sample.data.size();
    uplink_.send(wire_size,
                 [this, sample = std::move(sample)](
                     TimePoint t, util::BufferSlice /*data*/) mutable {
                   on_sample_at_origin(t, std::move(sample));
                 });
    produce_next();
  });
}

void LiveBroadcastPipeline::on_sample_at_origin(TimePoint now,
                                                media::MediaSample sample) {
  if (!running_) return;  // retired: in-flight uplink deliveries are no-ops
  // Maintain the origin backlog: the most recent kBacklogGops GOPs in
  // decode order, always starting at a keyframe. A joining viewer gets
  // this burst, so a deeper backlog trades join speed on fat links for
  // join *cost* on thin ones — the Fig. 4(a) mechanism.
  static constexpr int kBacklogGops = 3;
  if (sample.kind == media::SampleKind::Video && sample.keyframe) {
    ++backlog_keyframes_;
    if (backlog_keyframes_ > kBacklogGops) {
      // Drop the oldest GOP: everything up to (excluding) the next
      // keyframe after the front.
      backlog_.pop_front();  // the front keyframe itself
      while (!backlog_.empty() &&
             !(backlog_.front().kind == media::SampleKind::Video &&
               backlog_.front().keyframe)) {
        backlog_.pop_front();
      }
      --backlog_keyframes_;
    }
  }
  if (backlog_keyframes_ > 0) backlog_.push_back(sample);
  static constexpr std::size_t kBacklogCap = 1024;
  while (backlog_.size() > kBacklogCap) backlog_.pop_front();

  // RTMP fan-out.
  for (auto& [token, fn] : subscribers_) fn(now, sample);

  // HLS: segment each rendition, package, ship to the edge. Ladder
  // renditions run the sample through the transcoder first.
  for (std::size_t r = 0; r < renditions_.size(); ++r) {
    std::optional<hls::Segment> completed;
    if (renditions_[r].is_source) {
      completed = renditions_[r].segmenter.push(sample);
    } else {
      auto transcoded =
          media::transcode_sample(sample, renditions_[r].spec.profile);
      if (!transcoded) continue;
      completed = renditions_[r].segmenter.push(transcoded.value());
    }
    if (!completed) continue;
    hls::Segment seg = std::move(*completed);
    const TimePoint cut = now;
    sim_.schedule_after(
        cfg_.packaging_delay, [this, r, cut, seg = std::move(seg)]() mutable {
          // Pacing-only send: the edge cache receives the segment object
          // itself; nobody reads the wire bytes.
          const std::size_t wire_size = seg.ts_data.size();
          cdn_link_.send(wire_size,
                         [this, r, cut, seg = std::move(seg)](
                             TimePoint t, util::BufferSlice /*d*/) mutable {
                           renditions_[r].edge.push_back(
                               EdgeSegment{std::move(seg), t});
                           if (segments_shipped_ != nullptr) {
                             segments_shipped_->add(1);
                             segment_delivery_->record(to_s(t - cut));
                             obs_->trace.complete(
                                 "service", strf("ship r%zu", r), cut, t);
                           }
                         });
        });
  }
}

int LiveBroadcastPipeline::subscribe(OriginSampleFn fn) {
  const int token = next_token_++;
  subscribers_[token] = std::move(fn);
  return token;
}

void LiveBroadcastPipeline::unsubscribe(int token) {
  subscribers_.erase(token);
}

hls::MediaPlaylist LiveBroadcastPipeline::edge_playlist(
    TimePoint now, std::size_t r) const {
  // The playlist window only advances as segments land on the edge; a
  // snapshot at `now` must exclude segments that are still in flight.
  hls::LivePlaylistWindow window(cfg_.playlist_window, cfg_.segment_target);
  for (const EdgeSegment& es : renditions_[r].edge) {
    if (es.available_at <= now) {
      window.add_segment(segment_uri(r, es.segment.sequence),
                         es.segment.duration);
    }
  }
  return window.snapshot();
}

std::string LiveBroadcastPipeline::master_playlist() const {
  std::vector<hls::VariantRef> variants;
  for (std::size_t r = 0; r < renditions_.size(); ++r) {
    hls::VariantRef v;
    v.uri = r == 0 ? "playlist.m3u8" : strf("r%zu/playlist.m3u8", r);
    v.bandwidth_bps = renditions_[r].spec.nominal_bandwidth_bps;
    variants.push_back(std::move(v));
  }
  return hls::write_master_m3u8(variants);
}

hls::MediaPlaylist LiveBroadcastPipeline::vod_playlist(std::size_t r) const {
  const auto& edge = renditions_[r].edge;
  hls::MediaPlaylist pl;
  pl.target_duration = cfg_.segment_target;
  pl.ended = true;
  pl.media_sequence = edge.empty() ? 0 : edge.front().segment.sequence;
  for (const EdgeSegment& es : edge) {
    hls::SegmentRef ref;
    ref.uri = segment_uri(r, es.segment.sequence);
    ref.duration = es.segment.duration;
    ref.sequence = es.segment.sequence;
    pl.segments.push_back(std::move(ref));
  }
  return pl;
}

const LiveBroadcastPipeline::EdgeSegment* LiveBroadcastPipeline::find_segment(
    const std::string& uri) const {
  for (std::size_t r = 0; r < renditions_.size(); ++r) {
    for (const EdgeSegment& es : renditions_[r].edge) {
      if (segment_uri(r, es.segment.sequence) == uri) return &es;
    }
  }
  return nullptr;
}

}  // namespace psc::service

#include "service/load.h"

#include <algorithm>

#include "util/strings.h"

namespace psc::service {

namespace {

std::size_t epoch_index(TimePoint t, Duration len) {
  const double s = to_s(t);
  return s <= 0 ? 0 : static_cast<std::size_t>(s / to_s(len));
}

}  // namespace

EpochLoadLedger::EpochLoadLedger(Duration epoch_length)
    : epoch_length_(epoch_length.count() > 0 ? epoch_length : seconds(300)) {}

void EpochLoadLedger::set_epoch_length(Duration len) {
  if (len.count() > 0) epoch_length_ = len;
  epochs_.clear();
}

std::size_t EpochLoadLedger::epoch_of(TimePoint t) const {
  return epoch_index(t, epoch_length_);
}

LoadAccount& EpochLoadLedger::at(const std::string& server_ip,
                                 std::size_t e) {
  if (e >= epochs_.size()) epochs_.resize(e + 1);
  return epochs_[e][server_ip];
}

void EpochLoadLedger::add_session(const std::string& server_ip,
                                  TimePoint begin, TimePoint end,
                                  double weight, double bytes) {
  if (end <= begin || weight <= 0) return;
  const double total_s = to_s(end - begin);
  const std::size_t first = epoch_of(begin);
  const std::size_t last = epoch_of(end);
  for (std::size_t e = first; e <= last; ++e) {
    const TimePoint e_begin = time_at(to_s(epoch_length_) * e);
    const TimePoint e_end = e_begin + epoch_length_;
    const double overlap_s =
        to_s(std::min(end, e_end) - std::max(begin, e_begin));
    if (overlap_s <= 0) continue;
    LoadAccount& acc = at(server_ip, e);
    acc.session_seconds += weight * overlap_s;
    acc.sessions += weight;
    acc.bytes += weight * bytes * (overlap_s / total_s);
  }
}

void EpochLoadLedger::add_request(const std::string& server_ip, TimePoint at_,
                                  double bytes) {
  LoadAccount& acc = at(server_ip, epoch_of(at_));
  acc.requests += 1;
  acc.bytes += bytes;
}

void EpochLoadLedger::add_raw(const std::string& server_ip, std::size_t e,
                              const LoadAccount& delta) {
  LoadAccount& acc = at(server_ip, e);
  acc.session_seconds += delta.session_seconds;
  acc.sessions += delta.sessions;
  acc.bytes += delta.bytes;
  acc.requests += delta.requests;
}

std::string EpochLoadLedger::debug_text() const {
  std::string out;
  for (std::size_t e = 0; e < epochs_.size(); ++e) {
    for (const auto& [ip, acc] : epochs_[e]) {
      out += strf("%zu %s ss=%.17g n=%.17g b=%.17g r=%.17g\n", e,
                  ip.c_str(), acc.session_seconds, acc.sessions, acc.bytes,
                  acc.requests);
    }
  }
  return out;
}

const LoadAccount* EpochLoadLedger::account(const std::string& server_ip,
                                            std::size_t epoch) const {
  const auto* e = this->epoch(epoch);
  if (e == nullptr) return nullptr;
  auto it = e->find(server_ip);
  return it == e->end() ? nullptr : &it->second;
}

const std::map<std::string, LoadAccount>* EpochLoadLedger::epoch(
    std::size_t e) const {
  return e < epochs_.size() ? &epochs_[e] : nullptr;
}

std::size_t EpochLoadBoard::epoch_of(TimePoint t) const {
  return epoch_index(t, epoch_length_);
}

void EpochLoadBoard::merge_epoch(std::size_t e,
                                 const EpochLoadLedger& ledger) {
  if (e >= merged_.size()) merged_.resize(e + 1);
  const auto* bucket = ledger.epoch(e);
  if (bucket == nullptr) return;
  for (const auto& [ip, acc] : *bucket) {
    LoadAccount& dst = merged_[e][ip];
    dst.session_seconds += acc.session_seconds;
    dst.sessions += acc.sessions;
    dst.bytes += acc.bytes;
    dst.requests += acc.requests;
  }
}

const LoadAccount* EpochLoadBoard::account(const std::string& server_ip,
                                           std::size_t e) const {
  if (e >= merged_.size()) return nullptr;
  auto it = merged_[e].find(server_ip);
  return it == merged_[e].end() ? nullptr : &it->second;
}

double EpochLoadBoard::avg_concurrent(const std::string& server_ip,
                                      std::size_t e) const {
  const LoadAccount* acc = account(server_ip, e);
  return acc == nullptr ? 0 : acc->session_seconds / to_s(epoch_length_);
}

double EpochLoadBoard::previous_epoch_concurrent(const std::string& server_ip,
                                                 TimePoint t) const {
  const std::size_t e = epoch_of(t);
  if (e == 0) return 0;
  return avg_concurrent(server_ip, e - 1);
}

Duration EpochLoadBoard::penalty(const std::string& server_ip, TimePoint t,
                                 const EpochLoadConfig& cfg) const {
  const double load = previous_epoch_concurrent(server_ip, t);
  const Duration extra{to_s(cfg.latency_per_session) * load};
  return std::min(extra, cfg.max_extra_latency);
}

}  // namespace psc::service

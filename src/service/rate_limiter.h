// Per-account token-bucket rate limiter.
//
// The paper: "Periscope servers use rate limiting so that too frequent
// requests will be answered with HTTP 429 ('Too many requests'), which
// forces us to pace the requests" — and the authors dodged it for
// targeted crawls by running four emulators with different users logged
// in. Limits here are per account id, so the same trick works.
#pragma once

#include <map>
#include <string>

#include "util/units.h"

namespace psc::service {

struct RateLimitConfig {
  double capacity = 12;        // burst size
  double refill_per_sec = 1.2; // sustained request rate
};

class RateLimiter {
 public:
  explicit RateLimiter(const RateLimitConfig& cfg = {}) : cfg_(cfg) {}

  /// True if the request is admitted; false => respond 429.
  bool allow(const std::string& account, TimePoint now);

  /// Accounts with a tracked bucket. A bucket idle long enough to have
  /// refilled to capacity is indistinguishable from a fresh one, so it is
  /// evicted (amortised, during allow()) instead of living forever — a
  /// long crawl cycles through many accounts and the map would otherwise
  /// only ever grow.
  std::size_t tracked_accounts() const { return buckets_.size(); }

 private:
  struct Bucket {
    double tokens = 0;
    TimePoint last{};
    bool init = false;
  };

  /// Seconds of idleness after which a bucket is full again.
  Duration full_after() const;
  void sweep(TimePoint now);

  RateLimitConfig cfg_;
  std::map<std::string, Bucket> buckets_;
  TimePoint last_sweep_{};
};

}  // namespace psc::service

#include "service/world_view.h"

#include <algorithm>
#include <cmath>

namespace psc::service::map_query {

double visibility_hash(const BroadcastId& id) {
  const std::size_t h = std::hash<std::string>{}(id);
  return static_cast<double>(h % 1000003) / 1000003.0;
}

double visible_fraction(const geo::GeoRect& rect, const WorldConfig& cfg) {
  return std::pow(cfg.vis_full_area_deg2 /
                      std::max(rect.area_deg2(), cfg.vis_full_area_deg2),
                  cfg.vis_gamma);
}

bool admit(const BroadcastInfo& b, const geo::GeoRect& rect,
           bool include_ended_replays, TimePoint now, const WorldConfig& cfg,
           double p_visible) {
  if (!rect.contains(b.location)) return false;
  if (!b.live_at(now)) {
    // Ended broadcasts surface only on request, only while kept for
    // replay, and only until the registry garbage-collects them.
    if (!include_ended_replays || !b.available_for_replay ||
        b.start_time > now) {
      return false;
    }
  }
  if (b.is_private) return false;  // never on the map
  const bool featured = b.viewers_at(now) >= cfg.vis_always_viewers;
  return featured || visibility_hash(b.id) < p_visible;
}

void rank_and_truncate(std::vector<const BroadcastInfo*>& hits,
                       TimePoint now, std::size_t cap) {
  std::sort(hits.begin(), hits.end(),
            [now](const BroadcastInfo* a, const BroadcastInfo* b) {
              const int va = a->viewers_at(now), vb = b->viewers_at(now);
              if (va != vb) return va > vb;
              return a->id < b->id;
            });
  if (hits.size() > cap) hits.resize(cap);
}

bool teleport_candidate(const BroadcastInfo& b, TimePoint now,
                        Duration min_remaining) {
  if (!b.live_at(now) || b.is_private) return false;
  return b.end_time() - now >= min_remaining;
}

double teleport_weight(const BroadcastInfo& b, TimePoint now) {
  return b.viewers_at(now) + 0.25;
}

}  // namespace psc::service::map_query

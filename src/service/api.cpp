#include "service/api.h"

#include <cmath>

#include "util/strings.h"

namespace psc::service {

ApiServer::ApiServer(WorldView& world, MediaServerPool& servers,
                     const ApiConfig& cfg)
    : world_(world), servers_(servers), cfg_(cfg),
      limiter_(cfg.rate_limit) {}

int ApiServer::watching_at(const BroadcastInfo& b, TimePoint now) const {
  int watching = b.viewers_at(now);
  if (viewer_overlay_) {
    watching += static_cast<int>(std::lround(viewer_overlay_(b, now)));
  }
  return watching;
}

json::Value ApiServer::describe(const BroadcastInfo& b, TimePoint now) const {
  json::Object o;
  o["id"] = b.id;
  o["state"] = b.live_at(now) ? "RUNNING" : "ENDED";
  o["status"] = b.status_text;
  // The map shows approximate coordinates.
  o["ip_lat"] = std::round(b.location.lat_deg * 100) / 100;
  o["ip_lng"] = std::round(b.location.lon_deg * 100) / 100;
  o["start"] = to_s(b.start_time);
  o["n_watching"] = watching_at(b, now);
  o["available_for_replay"] = b.available_for_replay;
  return json::Value(std::move(o));
}

json::Value ApiServer::handle_map_feed(const json::Value& body,
                                       TimePoint now) {
  geo::GeoRect rect;
  rect.lat_min = body["p_lat_min"].as_number(-90);
  rect.lat_max = body["p_lat_max"].as_number(90);
  rect.lon_min = body["p_lng_min"].as_number(-180);
  rect.lon_max = body["p_lng_max"].as_number(180);
  const bool include_replay = body["include_replay"].as_bool(false);

  json::Array broadcasts;
  for (const BroadcastInfo* b : world_.query_rect(rect, include_replay)) {
    broadcasts.push_back(describe(*b, now));
  }
  json::Object resp;
  resp["broadcasts"] = json::Value(std::move(broadcasts));
  return json::Value(std::move(resp));
}

json::Value ApiServer::handle_get_broadcasts(const json::Value& body,
                                             TimePoint now) {
  json::Array out;
  for (const json::Value& idv : body["broadcast_ids"].as_array()) {
    const BroadcastInfo* b = world_.find(idv.as_string());
    if (b != nullptr) out.push_back(describe(*b, now));
  }
  json::Object resp;
  resp["broadcasts"] = json::Value(std::move(out));
  return json::Value(std::move(resp));
}

json::Value ApiServer::handle_access_video(const json::Value& body,
                                           TimePoint now) {
  json::Object resp;
  const BroadcastInfo* b = world_.find(body["broadcast_id"].as_string());
  if (b == nullptr || !b->live_at(now)) {
    resp["error"] = "broadcast not available";
    return json::Value(std::move(resp));
  }
  // Public streams go over plaintext RTMP (port 80) / HTTP; private
  // broadcasts are encrypted end to end: RTMPS and HTTPS for HLS (§3).
  const int watching = watching_at(*b, now);
  if (watching >= cfg_.hls_viewer_threshold) {
    const MediaServer& edge = servers_.hls_edge_for(access_counter_++);
    resp["protocol"] = "hls";
    resp["hls_url"] =
        strf("%s://%s/hls/%s/playlist.m3u8",
             b->is_private ? "https" : "http", edge.hostname.c_str(),
             b->id.c_str());
    resp["encrypted"] = b->is_private;
    resp["edge_ip"] = edge.ip;
  } else {
    const MediaServer& origin =
        servers_.rtmp_origin_for(b->location, b->id);
    resp["protocol"] = "rtmp";
    resp["rtmp_url"] = strf("%s://%s:%d/live/%s",
                            b->is_private ? "rtmps" : "rtmp",
                            origin.ip.c_str(), b->is_private ? 443 : 80,
                            b->id.c_str());
    resp["encrypted"] = b->is_private;
    resp["server_ip"] = origin.ip;
    resp["server_region"] = origin.region;
  }
  resp["n_watching"] = watching;
  return json::Value(std::move(resp));
}

json::Value ApiServer::handle_access_replay(const json::Value& body,
                                            TimePoint now) {
  json::Object resp;
  const BroadcastInfo* b = world_.find(body["broadcast_id"].as_string());
  if (b == nullptr) {
    resp["error"] = "broadcast not found";
    return json::Value(std::move(resp));
  }
  if (b->live_at(now)) {
    resp["error"] = "broadcast still live";
    return json::Value(std::move(resp));
  }
  if (!b->available_for_replay) {
    // The common case for never-watched broadcasts: >80% of them were
    // unavailable for replay in the paper's dataset.
    resp["error"] = "replay not available";
    return json::Value(std::move(resp));
  }
  const MediaServer& edge = servers_.hls_edge_for(access_counter_++);
  resp["protocol"] = "hls";
  resp["replay_url"] =
      strf("%s://%s/hls/%s/vod.m3u8", b->is_private ? "https" : "http",
           edge.hostname.c_str(), b->id.c_str());
  resp["encrypted"] = b->is_private;
  resp["edge_ip"] = edge.ip;
  return json::Value(std::move(resp));
}

json::Value ApiServer::handle_ranked_feed(TimePoint now) {
  // The home screen: ~80 broadcasts ranked by viewers plus a couple of
  // "featured" picks. Ranking reuses the world's viewer-sorted query at
  // world scope (featured = the global top picks regardless of region).
  auto hits = world_.query_rect(geo::GeoRect::world());
  json::Array featured, ranked;
  std::size_t i = 0;
  for (const BroadcastInfo* b : hits) {
    if (i < 2) {
      featured.push_back(describe(*b, now));
    } else if (ranked.size() < 80) {
      ranked.push_back(describe(*b, now));
    }
    ++i;
  }
  json::Object resp;
  resp["featured"] = json::Value(std::move(featured));
  resp["broadcasts"] = json::Value(std::move(ranked));
  return json::Value(std::move(resp));
}

json::Value ApiServer::call(const std::string& api_request,
                            const json::Value& body, TimePoint now,
                            int* status_out) {
  last_injected_latency_ = Duration{0};
  if (fault_hook_) {
    const fault::ApiFault f = fault_hook_(now);
    last_injected_latency_ = f.extra_latency;
    if (f.status != 0) {
      ++faulted_;
      if (obs_ != nullptr) {
        obs_->metrics.counter("api_faulted_total").add(1);
        obs_->trace.instant("fault",
                            strf("api %d %s", f.status, api_request.c_str()),
                            now);
      }
      if (status_out != nullptr) *status_out = f.status;
      return json::Value(
          json::Object{{"error", json::Value("service unavailable")}});
    }
  }
  const std::string account = body["cookie"].as_string();
  if (!limiter_.allow(account.empty() ? "anonymous" : account, now)) {
    ++throttled_;
    if (obs_ != nullptr) {
      obs_->metrics.counter("api_throttled_total").add(1);
      obs_->trace.instant("service", "429 " + api_request, now);
    }
    if (status_out != nullptr) *status_out = 429;
    return json::Value(json::Object{{"error", json::Value("rate limited")}});
  }
  ++served_;
  if (obs_ != nullptr) {
    obs_->metrics
        .counter("api_requests_total{api=\"" + api_request + "\"}")
        .add(1);
    obs_->trace.instant("service", "api " + api_request, now);
  }
  if (status_out != nullptr) *status_out = 200;
  if (api_request == "mapGeoBroadcastFeed") {
    return handle_map_feed(body, now);
  }
  if (api_request == "getBroadcasts") {
    return handle_get_broadcasts(body, now);
  }
  if (api_request == "accessVideo") {
    return handle_access_video(body, now);
  }
  if (api_request == "accessReplay") {
    return handle_access_replay(body, now);
  }
  if (api_request == "rankedBroadcastFeed") {
    return handle_ranked_feed(now);
  }
  if (api_request == "playbackMeta") {
    playback_metas_.push_back(body);
    return json::Value(json::Object{});
  }
  if (status_out != nullptr) *status_out = 404;
  return json::Value(
      json::Object{{"error", json::Value("unknown api request")}});
}

http::Response ApiServer::handle(const http::Request& req, TimePoint now) {
  static constexpr std::string_view kPrefix = "/api/v2/";
  if (req.method != "POST" || !starts_with(req.path, kPrefix)) {
    return http::Response::not_found();
  }
  const std::string api_request = req.path.substr(kPrefix.size());
  auto body = json::parse(req.body);
  if (!body) {
    http::Response r;
    r.status = 500;
    r.reason = http::reason_for(500);
    return r;
  }
  int status = 200;
  const json::Value out = call(api_request, body.value(), now, &status);
  if (status == 429) return http::Response::too_many_requests();
  if (status == 404) return http::Response::not_found();
  http::Response resp = http::Response::json(out.dump());
  if (obs_ != nullptr) {
    obs_->metrics.histogram("api_response_bytes")
        .record(static_cast<double>(resp.body.size()));
  }
  return resp;
}

}  // namespace psc::service

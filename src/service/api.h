// The Periscope API server (Table 1 of the paper).
//
// The app POSTs JSON to https://api.periscope.tv/api/v2/<apiRequest>.
// Implemented requests:
//   mapGeoBroadcastFeed — broadcasts inside a lat/lon rectangle (capped,
//                         which is why zooming in reveals more);
//   getBroadcasts       — descriptions incl. current viewer counts for a
//                         list of 13-char broadcast ids;
//   accessVideo         — where/how to watch: RTMP origin for normal
//                         broadcasts, HLS playlist URL once the viewer
//                         count crosses the fallback threshold (~100);
//   playbackMeta        — end-of-session playback statistics upload;
//   accessReplay        — VOD playlist URL for a finished broadcast the
//                         broadcaster kept available for replay;
//   rankedBroadcastFeed — the app's home list: ~80 ranked broadcasts
//                         plus a couple of featured ones (§3).
//
// Every request carries a "cookie" identifying the account; the rate
// limiter answers 429 per account, as the paper observed.
#pragma once

#include <functional>
#include <vector>

#include "fault/backoff.h"
#include "http/http.h"
#include "json/json.h"
#include "obs/bundle.h"
#include "service/rate_limiter.h"
#include "service/servers.h"
#include "service/world_view.h"

namespace psc::service {

struct ApiConfig {
  RateLimitConfig rate_limit;
  /// Concurrent-viewer count at which accessVideo switches to HLS.
  int hls_viewer_threshold = 100;
};

class ApiServer {
 public:
  /// The API only reads the world, so any WorldView works: the live
  /// World of an independent-worlds study, or a shared-world campaign's
  /// ReplayWorld.
  ApiServer(WorldView& world, MediaServerPool& servers, const ApiConfig& cfg);

  /// Handle a POST /api/v2/<name>. `now` is the (simulated) server time.
  http::Response handle(const http::Request& req, TimePoint now);

  /// Convenience for in-process calls (no HTTP framing).
  json::Value call(const std::string& api_request, const json::Value& body,
                   TimePoint now, int* status_out = nullptr);

  /// playbackMeta uploads received so far.
  const std::vector<json::Value>& playback_metas() const {
    return playback_metas_;
  }

  std::size_t requests_served() const { return served_; }
  std::size_t requests_throttled() const { return throttled_; }

  /// Attach a metric/trace sink (nullptr = off): per-endpoint request
  /// counters, 429 counter, response-size histogram, and one trace
  /// instant per request on the shard lane.
  void set_obs(obs::Obs* obs) { obs_ = obs; }

  /// Fault injection: consulted once per call(). A non-zero status in
  /// the returned ApiFault turns the response into a 5xx error; any
  /// extra_latency is recorded for the caller to apply to the request's
  /// service time (the in-process call path has no transport to delay).
  void set_fault_hook(std::function<fault::ApiFault(TimePoint)> hook) {
    fault_hook_ = std::move(hook);
  }
  /// Extra latency injected into the most recent call() (zero when the
  /// hook is unset or no latency burst is active).
  Duration last_injected_latency() const { return last_injected_latency_; }
  std::size_t requests_faulted() const { return faulted_; }

  /// Aggregate-audience overlay (hybrid-fidelity campaigns): extra
  /// concurrent viewers on top of a broadcast's native count. Raises
  /// n_watching in responses and the accessVideo HLS switch — so a
  /// flash-crowded broadcast serves its cohort over HLS exactly as the
  /// real service sheds load — but never feeds back into the world
  /// process itself. nullptr = off (bit-identical to pre-overlay builds).
  void set_viewer_overlay(
      std::function<double(const BroadcastInfo&, TimePoint)> fn) {
    viewer_overlay_ = std::move(fn);
  }

 private:
  /// Concurrent viewers the API reports: the broadcast's own curve plus
  /// the aggregate overlay when set.
  int watching_at(const BroadcastInfo& b, TimePoint now) const;
  json::Value describe(const BroadcastInfo& b, TimePoint now) const;
  json::Value handle_map_feed(const json::Value& body, TimePoint now);
  json::Value handle_get_broadcasts(const json::Value& body, TimePoint now);
  json::Value handle_access_video(const json::Value& body, TimePoint now);
  json::Value handle_access_replay(const json::Value& body, TimePoint now);
  json::Value handle_ranked_feed(TimePoint now);

  WorldView& world_;
  MediaServerPool& servers_;
  ApiConfig cfg_;
  obs::Obs* obs_ = nullptr;
  RateLimiter limiter_;
  std::function<fault::ApiFault(TimePoint)> fault_hook_;
  std::function<double(const BroadcastInfo&, TimePoint)> viewer_overlay_;
  Duration last_injected_latency_{0};
  std::vector<json::Value> playback_metas_;
  std::size_t served_ = 0;
  std::size_t throttled_ = 0;
  std::size_t faulted_ = 0;
  std::size_t access_counter_ = 0;
};

}  // namespace psc::service

// Minimal HTTP/1.1 message model.
//
// Two uses in the study: (1) the Periscope API — JSON bodies POSTed to
// https://api.periscope.tv/api/v2/<apiRequest>; (2) HLS — GETs for the
// M3U8 playlist and the MPEG-TS segments from the CDN edge. Rate-limited
// API calls get "429 Too Many Requests", which the crawler must pace
// around exactly as the paper describes.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/buffer.h"
#include "util/bytes.h"
#include "util/result.h"

namespace psc::http {

struct Request {
  std::string method = "GET";
  std::string path = "/";
  std::map<std::string, std::string> headers;
  std::string body;

  std::string serialize() const;
  static Result<Request> parse(const std::string& text);
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  std::map<std::string, std::string> headers;
  /// Ref-counted: serving a cached segment shares its buffer instead of
  /// copying (an owning Bytes converts implicitly).
  util::BufferSlice body;

  Bytes serialize() const;
  /// Parse from a view; the body is copied out.
  static Result<Response> parse(BytesView data);
  /// Parse from a delivered slice; the body aliases `data` (zero-copy).
  static Result<Response> parse_slice(const util::BufferSlice& data);

  static Response ok(util::BufferSlice body, std::string content_type);
  static Response json(const std::string& body);
  static Response too_many_requests();
  static Response not_found();
};

const char* reason_for(int status);

/// Incremental request parser for byte streams that fragment arbitrarily
/// (real sockets deliver at any granularity, including one byte at a
/// time). Feed bytes with push(); complete requests accumulate and come
/// out of take_requests() in arrival order. Framing: headers end at
/// CRLFCRLF, the body length is Content-Length (absent = 0), and the
/// buffer may hold several pipelined requests. The parser is
/// split-invariant: any partition of the same byte stream yields the same
/// request sequence and the same terminal error, which the gateway's
/// golden-corpus regression tests assert at granularities 1/7/random.
class RequestParser {
 public:
  /// Oversize guards: hostile peers must not grow the buffer unboundedly.
  static constexpr std::size_t kMaxHeadBytes = 64 * 1024;
  static constexpr std::size_t kMaxBodyBytes = 16 * 1024 * 1024;

  /// Append bytes; parses as many complete requests as possible. Once an
  /// error is returned the parser is poisoned: the connection should be
  /// closed, and further pushes report the same error.
  Status push(BytesView data);
  Status push(std::string_view text) {
    return push(BytesView(reinterpret_cast<const std::uint8_t*>(text.data()),
                          text.size()));
  }

  /// Requests completed so far, in arrival order (moves them out).
  std::vector<Request> take_requests();

  bool failed() const { return error_.has_value(); }
  /// Bytes buffered but not yet parsed into a complete request.
  std::size_t buffered() const { return buf_.size(); }

 private:
  Status fail(Error e);

  std::string buf_;
  std::vector<Request> out_;
  std::optional<Error> error_;
};

}  // namespace psc::http

// Minimal HTTP/1.1 message model.
//
// Two uses in the study: (1) the Periscope API — JSON bodies POSTed to
// https://api.periscope.tv/api/v2/<apiRequest>; (2) HLS — GETs for the
// M3U8 playlist and the MPEG-TS segments from the CDN edge. Rate-limited
// API calls get "429 Too Many Requests", which the crawler must pace
// around exactly as the paper describes.
#pragma once

#include <map>
#include <string>

#include "util/buffer.h"
#include "util/bytes.h"
#include "util/result.h"

namespace psc::http {

struct Request {
  std::string method = "GET";
  std::string path = "/";
  std::map<std::string, std::string> headers;
  std::string body;

  std::string serialize() const;
  static Result<Request> parse(const std::string& text);
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  std::map<std::string, std::string> headers;
  /// Ref-counted: serving a cached segment shares its buffer instead of
  /// copying (an owning Bytes converts implicitly).
  util::BufferSlice body;

  Bytes serialize() const;
  /// Parse from a view; the body is copied out.
  static Result<Response> parse(BytesView data);
  /// Parse from a delivered slice; the body aliases `data` (zero-copy).
  static Result<Response> parse_slice(const util::BufferSlice& data);

  static Response ok(util::BufferSlice body, std::string content_type);
  static Response json(const std::string& body);
  static Response too_many_requests();
  static Response not_found();
};

const char* reason_for(int status);

}  // namespace psc::http

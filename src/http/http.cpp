#include "http/http.h"

#include <cstdlib>

#include "util/strings.h"

namespace psc::http {

const char* reason_for(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

std::string Request::serialize() const {
  std::string out = method + " " + path + " HTTP/1.1\r\n";
  for (const auto& [k, v] : headers) out += k + ": " + v + "\r\n";
  out += strf("Content-Length: %zu\r\n\r\n", body.size());
  out += body;
  return out;
}

namespace {

/// Split head (start line + headers) from body at CRLFCRLF.
Result<std::pair<std::string, std::string>> split_head(
    const std::string& text) {
  const std::size_t pos = text.find("\r\n\r\n");
  if (pos == std::string::npos) {
    return make_error("http", "missing header terminator");
  }
  return std::make_pair(text.substr(0, pos), text.substr(pos + 4));
}

std::map<std::string, std::string> parse_headers(
    const std::vector<std::string>& lines) {
  std::map<std::string, std::string> headers;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::size_t colon = lines[i].find(':');
    if (colon == std::string::npos) continue;
    headers[std::string(trim(lines[i].substr(0, colon)))] =
        std::string(trim(lines[i].substr(colon + 1)));
  }
  return headers;
}

}  // namespace

Result<Request> Request::parse(const std::string& text) {
  auto parts = split_head(text);
  if (!parts) return parts.error();
  const auto& [head, body] = parts.value();
  const std::vector<std::string> lines = split(head, '\n');
  if (lines.empty()) return make_error("http", "empty request");
  const std::vector<std::string> start = split(trim(lines[0]), ' ');
  if (start.size() < 3) return make_error("http", "malformed request line");
  Request req;
  req.method = start[0];
  req.path = start[1];
  req.headers = parse_headers(lines);
  req.body = body;
  return req;
}

Bytes Response::serialize() const {
  std::string head = strf("HTTP/1.1 %d %s\r\n", status, reason.c_str());
  for (const auto& [k, v] : headers) head += k + ": " + v + "\r\n";
  head += strf("Content-Length: %zu\r\n\r\n", body.size());
  ByteWriter w;
  w.raw(head);
  w.raw(body);
  return w.take();
}

namespace {

/// Parse the status line + headers; on success returns the byte offset
/// where the body starts (callers attach the body zero-copy or by copy).
Result<std::size_t> parse_response_head(BytesView data, Response& resp) {
  // Headers are ASCII; find the terminator in the raw bytes first.
  std::size_t pos = std::string::npos;
  for (std::size_t i = 0; i + 4 <= data.size(); ++i) {
    if (data[i] == '\r' && data[i + 1] == '\n' && data[i + 2] == '\r' &&
        data[i + 3] == '\n') {
      pos = i;
      break;
    }
  }
  if (pos == std::string::npos) {
    return make_error("http", "missing header terminator");
  }
  const std::string head = to_string(data.subspan(0, pos));
  const std::vector<std::string> lines = split(head, '\n');
  if (lines.empty()) return make_error("http", "empty response");
  const std::vector<std::string> start = split(trim(lines[0]), ' ');
  if (start.size() < 2 || !starts_with(start[0], "HTTP/")) {
    return make_error("http", "malformed status line");
  }
  resp.status = std::atoi(start[1].c_str());
  resp.reason = reason_for(resp.status);
  resp.headers = parse_headers(lines);
  return pos + 4;
}

}  // namespace

Result<Response> Response::parse(BytesView data) {
  Response resp;
  auto body_off = parse_response_head(data, resp);
  if (!body_off) return body_off.error();
  resp.body = util::BufferSlice::copy_of(data.subspan(body_off.value()));
  return resp;
}

Result<Response> Response::parse_slice(const util::BufferSlice& data) {
  Response resp;
  auto body_off = parse_response_head(data.view(), resp);
  if (!body_off) return body_off.error();
  resp.body =
      data.subslice(body_off.value(), data.size() - body_off.value());
  return resp;
}

Response Response::ok(util::BufferSlice body, std::string content_type) {
  Response r;
  r.status = 200;
  r.reason = "OK";
  r.headers["Content-Type"] = std::move(content_type);
  r.body = std::move(body);
  return r;
}

Response Response::json(const std::string& body) {
  return ok(to_bytes(body), "application/json");
}

Response Response::too_many_requests() {
  Response r;
  r.status = 429;
  r.reason = reason_for(429);
  return r;
}

Response Response::not_found() {
  Response r;
  r.status = 404;
  r.reason = reason_for(404);
  return r;
}

Status RequestParser::fail(Error e) {
  error_ = e;
  buf_.clear();
  return std::move(e);
}

Status RequestParser::push(BytesView data) {
  if (error_) return *error_;
  buf_.append(reinterpret_cast<const char*>(data.data()), data.size());
  for (;;) {
    const std::size_t head_end = buf_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (buf_.size() > kMaxHeadBytes) {
        return fail(make_error("http", "request head too large"));
      }
      return {};
    }
    // Reuse the one-shot parser on the head (it validates the request
    // line and splits the headers); the body is attached below once the
    // Content-Length bytes have arrived.
    auto head = Request::parse(buf_.substr(0, head_end + 4));
    if (!head) return fail(head.error());
    std::size_t body_len = 0;
    if (auto it = head.value().headers.find("Content-Length");
        it != head.value().headers.end()) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(it->second.c_str(), &end, 10);
      if (end == it->second.c_str() || *end != '\0') {
        return fail(make_error("http", "malformed Content-Length"));
      }
      body_len = static_cast<std::size_t>(n);
    }
    if (body_len > kMaxBodyBytes) {
      return fail(make_error("http", "request body too large"));
    }
    const std::size_t total = head_end + 4 + body_len;
    if (buf_.size() < total) return {};  // body still in flight
    Request req = std::move(head).value();
    req.body = buf_.substr(head_end + 4, body_len);
    out_.push_back(std::move(req));
    buf_.erase(0, total);
  }
}

std::vector<Request> RequestParser::take_requests() {
  std::vector<Request> out;
  out.swap(out_);
  return out;
}

}  // namespace psc::http

#include "http/websocket.h"

#include "util/base64.h"
#include "util/sha1.h"
#include "util/strings.h"

namespace psc::ws {

namespace {
// RFC 6455 §1.3 magic GUID.
constexpr const char* kMagic = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11";
}  // namespace

std::string accept_key(const std::string& client_key) {
  const Bytes digest_input = to_bytes(client_key + kMagic);
  const auto digest = sha1(digest_input);
  return base64_encode(BytesView(digest.data(), digest.size()));
}

std::string upgrade_request(const std::string& host, const std::string& path,
                            const std::string& client_key) {
  return strf(
      "GET %s HTTP/1.1\r\nHost: %s\r\nUpgrade: websocket\r\n"
      "Connection: Upgrade\r\nSec-WebSocket-Key: %s\r\n"
      "Sec-WebSocket-Version: 13\r\n\r\n",
      path.c_str(), host.c_str(), client_key.c_str());
}

std::string upgrade_response(const std::string& client_key) {
  return strf(
      "HTTP/1.1 101 Switching Protocols\r\nUpgrade: websocket\r\n"
      "Connection: Upgrade\r\nSec-WebSocket-Accept: %s\r\n\r\n",
      accept_key(client_key).c_str());
}

Bytes encode_frame(const Frame& frame,
                   std::optional<std::uint32_t> masking_key) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>((frame.fin ? 0x80 : 0x00) |
                                 static_cast<int>(frame.opcode)));
  const bool masked = masking_key.has_value();
  const std::size_t len = frame.payload.size();
  const std::uint8_t mask_bit = masked ? 0x80 : 0x00;
  if (len < 126) {
    w.u8(static_cast<std::uint8_t>(mask_bit | len));
  } else if (len <= 0xFFFF) {
    w.u8(static_cast<std::uint8_t>(mask_bit | 126));
    w.u16be(static_cast<std::uint16_t>(len));
  } else {
    w.u8(static_cast<std::uint8_t>(mask_bit | 127));
    w.u64be(len);
  }
  if (masked) {
    w.u32be(*masking_key);
    Bytes masked_payload = frame.payload;
    for (std::size_t i = 0; i < masked_payload.size(); ++i) {
      masked_payload[i] ^= static_cast<std::uint8_t>(
          *masking_key >> (8 * (3 - (i % 4))));
    }
    w.raw(masked_payload);
  } else {
    w.raw(frame.payload);
  }
  return w.take();
}

Bytes client_text_frame(std::string_view text, std::uint32_t masking_key) {
  Frame f;
  f.opcode = Opcode::Text;
  f.payload = to_bytes(text);
  return encode_frame(f, masking_key);
}

Bytes server_text_frame(std::string_view text) {
  Frame f;
  f.opcode = Opcode::Text;
  f.payload = to_bytes(text);
  return encode_frame(f);
}

Status FrameDecoder::push(BytesView data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  for (;;) {
    if (buffer_.size() < 2) return {};
    const std::uint8_t b0 = buffer_[0];
    const std::uint8_t b1 = buffer_[1];
    if ((b0 & 0x70) != 0) {
      return Error{"ws", "reserved bits set"};
    }
    const bool masked = (b1 & 0x80) != 0;
    std::size_t header = 2;
    std::uint64_t len = b1 & 0x7F;
    if (len == 126) {
      if (buffer_.size() < 4) return {};
      len = (std::uint64_t{buffer_[2]} << 8) | buffer_[3];
      header = 4;
    } else if (len == 127) {
      if (buffer_.size() < 10) return {};
      len = 0;
      for (int i = 0; i < 8; ++i) {
        len = (len << 8) | buffer_[2 + static_cast<std::size_t>(i)];
      }
      header = 10;
    }
    // Bound the declared length before it enters any size arithmetic:
    // an attacker-controlled 64-bit length otherwise wraps `header + len`
    // (10 + 2^64-16 == 2) and walks the payload copy off the buffer.
    if (len > kMaxFramePayload) {
      return Error{"ws", "frame payload exceeds 16 MiB limit"};
    }
    std::uint32_t key = 0;
    if (masked) {
      if (buffer_.size() < header + 4) return {};
      key = (std::uint32_t{buffer_[header]} << 24) |
            (std::uint32_t{buffer_[header + 1]} << 16) |
            (std::uint32_t{buffer_[header + 2]} << 8) |
            buffer_[header + 3];
      header += 4;
    }
    if (buffer_.size() < header + len) return {};

    Frame f;
    f.fin = (b0 & 0x80) != 0;
    f.opcode = static_cast<Opcode>(b0 & 0x0F);
    f.masked = masked;
    f.payload.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(header),
                     buffer_.begin() +
                         static_cast<std::ptrdiff_t>(header + len));
    if (masked) {
      for (std::size_t i = 0; i < f.payload.size(); ++i) {
        f.payload[i] ^=
            static_cast<std::uint8_t>(key >> (8 * (3 - (i % 4))));
      }
    }
    frames_.push_back(std::move(f));
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(header + len));
  }
}

std::vector<Frame> FrameDecoder::take_frames() {
  std::vector<Frame> out = std::move(frames_);
  frames_.clear();
  return out;
}

Status MessageAssembler::push_frame(const Frame& frame) {
  const bool control = static_cast<int>(frame.opcode) >= 0x8;
  if (control) {
    if (!frame.fin) {
      return Error{"ws", "fragmented control frame"};
    }
    messages_.push_back(frame);
    return {};
  }
  if (frame.opcode == Opcode::Continuation) {
    if (!in_progress_) {
      return Error{"ws", "continuation frame without a message in progress"};
    }
    in_progress_->payload.insert(in_progress_->payload.end(),
                                 frame.payload.begin(), frame.payload.end());
    if (frame.fin) {
      in_progress_->fin = true;
      messages_.push_back(std::move(*in_progress_));
      in_progress_.reset();
    }
    return {};
  }
  // Text/Binary: either a whole message or the first fragment.
  if (in_progress_) {
    return Error{"ws", "new data frame while a fragmented message is open"};
  }
  if (frame.fin) {
    messages_.push_back(frame);
  } else {
    in_progress_ = frame;
  }
  return {};
}

std::vector<Frame> MessageAssembler::take_messages() {
  std::vector<Frame> out = std::move(messages_);
  messages_.clear();
  return out;
}

}  // namespace psc::ws

// WebSocket (RFC 6455) framing and upgrade handshake.
//
// "The chat uses Websockets to deliver messages" (paper §3). The chat
// room's wire format is built here: upgrade handshake key derivation,
// frame encode (client frames masked, server frames not) and an
// incremental frame decoder.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace psc::ws {

enum class Opcode : std::uint8_t {
  Continuation = 0x0,
  Text = 0x1,
  Binary = 0x2,
  Close = 0x8,
  Ping = 0x9,
  Pong = 0xA,
};

struct Frame {
  bool fin = true;
  Opcode opcode = Opcode::Text;
  bool masked = false;
  Bytes payload;
};

/// Sec-WebSocket-Accept value for a client's Sec-WebSocket-Key.
std::string accept_key(const std::string& client_key);

/// The client's upgrade request / server's 101 response (for tests and
/// the chat connection setup).
std::string upgrade_request(const std::string& host, const std::string& path,
                            const std::string& client_key);
std::string upgrade_response(const std::string& client_key);

/// Serialise a frame. Client->server frames MUST be masked (RFC 6455
/// §5.1); pass a masking key for those.
Bytes encode_frame(const Frame& frame,
                   std::optional<std::uint32_t> masking_key = std::nullopt);

/// Convenience: a masked client text frame / an unmasked server one.
Bytes client_text_frame(std::string_view text, std::uint32_t masking_key);
Bytes server_text_frame(std::string_view text);

/// Upper bound on a single frame's payload. RFC 6455 allows 2^63-1 byte
/// frames, but accepting the full range lets one declared length both
/// overflow `header + len` size arithmetic and pin unbounded memory while
/// the decoder waits for bytes that never come. Chat messages are tiny;
/// anything past this is treated as malformed.
constexpr std::uint64_t kMaxFramePayload = 16u * 1024 * 1024;

/// Incremental decoder: feed bytes, take complete frames.
class FrameDecoder {
 public:
  Status push(BytesView data);
  std::vector<Frame> take_frames();

 private:
  Bytes buffer_;
  std::vector<Frame> frames_;
};

/// Reassembles fragmented messages (RFC 6455 §5.4): a non-control frame
/// with fin=0 starts a message, Continuation frames extend it, and the
/// fin=1 continuation completes it. Control frames (Ping/Pong/Close) may
/// interleave and are passed through as standalone messages; they must not
/// be fragmented.
class MessageAssembler {
 public:
  /// Feed one decoded frame. Complete messages (payloads concatenated,
  /// opcode of the first fragment) accumulate for take_messages().
  Status push_frame(const Frame& frame);
  std::vector<Frame> take_messages();

  bool mid_message() const { return in_progress_.has_value(); }

 private:
  std::optional<Frame> in_progress_;
  std::vector<Frame> messages_;
};

}  // namespace psc::ws

#include "rtmp/session.h"

#include <cmath>

namespace psc::rtmp {

namespace {

constexpr std::uint32_t kOutChunkSize = 4096;
constexpr std::uint32_t kWindowAckSize = 2500000;
constexpr std::uint32_t kMediaStreamId = 1;

Bytes u32_payload(std::uint32_t v) {
  ByteWriter w;
  w.u32be(v);
  return w.take();
}

std::uint32_t ms_from(Duration d) {
  const double ms = to_ms(d);
  return ms <= 0 ? 0 : static_cast<std::uint32_t>(std::llround(ms));
}

}  // namespace

// ---------------- ServerSession ----------------

ServerSession::ServerSession(std::uint64_t seed) : seed_(seed) {}

void ServerSession::send_message(std::uint32_t csid, MessageType type,
                                 std::uint32_t timestamp_ms,
                                 std::uint32_t stream_id, Bytes payload) {
  Message msg;
  msg.type = type;
  msg.timestamp_ms = timestamp_ms;
  msg.stream_id = stream_id;
  msg.payload = std::move(payload);
  writer_.write(out_, csid, msg);
}

Status ServerSession::on_input(BytesView data) {
  if (state_ != State::Command) {
    inbuf_.insert(inbuf_.end(), data.begin(), data.end());
    if (state_ == State::WaitHello) {
      if (inbuf_.size() < 1 + kHandshakeBlobSize) return {};
      auto hello = parse_hello(inbuf_);
      if (!hello) return hello.error();
      // S0+S1+S2.
      const Bytes s0s1 = make_hello(0, seed_);
      my_blob_.assign(s0s1.begin() + 1, s0s1.end());
      out_.raw(s0s1);
      out_.raw(make_echo(hello.value().blob));
      inbuf_.erase(inbuf_.begin(),
                   inbuf_.begin() + 1 + kHandshakeBlobSize);
      state_ = State::WaitEcho;
    }
    if (state_ == State::WaitEcho) {
      if (inbuf_.size() < kHandshakeBlobSize) return {};
      if (!echo_matches(BytesView(inbuf_).subspan(0, kHandshakeBlobSize),
                        my_blob_)) {
        return Error{"rtmp_handshake", "C2 does not echo S1"};
      }
      inbuf_.erase(inbuf_.begin(), inbuf_.begin() + kHandshakeBlobSize);
      state_ = State::Command;
      // Any bytes already past the handshake belong to the chunk stream.
      if (!inbuf_.empty()) {
        if (auto s = reader_.push(inbuf_); !s) return s;
        inbuf_.clear();
      }
    }
  } else {
    if (auto s = reader_.push(data); !s) return s;
  }
  for (Message& m : reader_.take_messages()) {
    if (m.type == MessageType::CommandAmf0) {
      handle_command(m);
    } else if (m.type == MessageType::Video ||
               m.type == MessageType::Audio) {
      handle_published_media(m);
    }
    // Acknowledgement / UserControl from the client are accepted silently.
  }
  return {};
}

void ServerSession::handle_published_media(const Message& msg) {
  if (!publishing_) return;
  if (msg.type == MessageType::Video) {
    auto tag = flv::parse_video_tag(msg.payload);
    if (!tag) return;
    if (tag.value().packet_type == flv::AvcPacketType::SequenceHeader) {
      auto cfg = media::parse_avc_decoder_config(tag.value().data);
      if (cfg && publish_cbs_.on_avc_config) {
        publish_cbs_.on_avc_config(cfg.value());
      }
      return;
    }
    if (publish_cbs_.on_sample) {
      media::MediaSample s;
      s.kind = media::SampleKind::Video;
      s.dts = millis(msg.timestamp_ms);
      s.pts = millis(static_cast<double>(msg.timestamp_ms) +
                     tag.value().composition_time_ms);
      s.keyframe = tag.value().keyframe;
      s.data = std::move(tag.value().data);
      publish_cbs_.on_sample(std::move(s));
    }
  } else {
    auto tag = flv::parse_audio_tag(msg.payload);
    if (!tag || tag.value().packet_type != flv::AacPacketType::Raw) return;
    if (publish_cbs_.on_sample) {
      media::MediaSample s;
      s.kind = media::SampleKind::Audio;
      s.dts = millis(msg.timestamp_ms);
      s.pts = s.dts;
      s.keyframe = true;
      s.data = std::move(tag.value().data);
      publish_cbs_.on_sample(std::move(s));
    }
  }
}

void ServerSession::handle_command(const Message& msg) {
  auto values = amf::decode_all(msg.payload);
  if (!values || values.value().empty()) return;
  const auto& v = values.value();
  const std::string& name = v[0].as_string();
  const double txn = v.size() > 1 ? v[1].as_number() : 0.0;

  if (name == "connect") {
    app_ = v.size() > 2 ? v[2]["app"].as_string() : "";
    send_message(kCsidProtocol, MessageType::WindowAckSize, 0, 0,
                 u32_payload(kWindowAckSize));
    {
      ByteWriter w;
      w.u32be(kWindowAckSize);
      w.u8(2);  // dynamic limit
      send_message(kCsidProtocol, MessageType::SetPeerBandwidth, 0, 0,
                   w.take());
    }
    send_message(kCsidProtocol, MessageType::SetChunkSize, 0, 0,
                 u32_payload(kOutChunkSize));
    writer_.set_chunk_size(kOutChunkSize);
    amf::Object props{{"fmsVer", amf::Value("FMS/3,5,7,7009")},
                      {"capabilities", amf::Value(31.0)}};
    amf::Object info{{"level", amf::Value("status")},
                     {"code", amf::Value("NetConnection.Connect.Success")},
                     {"description", amf::Value("Connection succeeded.")}};
    send_message(kCsidCommand, MessageType::CommandAmf0, 0, 0,
                 amf::encode_all({amf::Value("_result"), amf::Value(txn),
                                  amf::Value(std::move(props)),
                                  amf::Value(std::move(info))}));
  } else if (name == "createStream") {
    send_message(kCsidCommand, MessageType::CommandAmf0, 0, 0,
                 amf::encode_all({amf::Value("_result"), amf::Value(txn),
                                  amf::Value(),
                                  amf::Value(double(kMediaStreamId))}));
  } else if (name == "releaseStream" || name == "FCPublish") {
    // Courtesy commands sent by publishers before createStream; a
    // _result keeps strict clients happy.
    send_message(kCsidCommand, MessageType::CommandAmf0, 0, 0,
                 amf::encode_all({amf::Value("_result"), amf::Value(txn),
                                  amf::Value(), amf::Value()}));
  } else if (name == "publish") {
    stream_name_ = v.size() > 3 ? v[3].as_string() : "";
    {
      ByteWriter w;
      w.u16be(static_cast<std::uint16_t>(UserControlEvent::StreamBegin));
      w.u32be(kMediaStreamId);
      send_message(kCsidProtocol, MessageType::UserControl, 0, 0, w.take());
    }
    amf::Object info{{"level", amf::Value("status")},
                     {"code", amf::Value("NetStream.Publish.Start")},
                     {"description", amf::Value("Publishing.")}};
    send_message(kCsidCommand, MessageType::CommandAmf0, 0, kMediaStreamId,
                 amf::encode_all({amf::Value("onStatus"), amf::Value(0.0),
                                  amf::Value(),
                                  amf::Value(std::move(info))}));
    publishing_ = true;
    if (publish_cbs_.on_publish_start) {
      publish_cbs_.on_publish_start(stream_name_);
    }
  } else if (name == "play") {
    stream_name_ = v.size() > 3 ? v[3].as_string() : "";
    {
      ByteWriter w;
      w.u16be(static_cast<std::uint16_t>(UserControlEvent::StreamBegin));
      w.u32be(kMediaStreamId);
      send_message(kCsidProtocol, MessageType::UserControl, 0, 0, w.take());
    }
    amf::Object info{{"level", amf::Value("status")},
                     {"code", amf::Value("NetStream.Play.Start")},
                     {"description", amf::Value("Started playing.")}};
    send_message(kCsidCommand, MessageType::CommandAmf0, 0, kMediaStreamId,
                 amf::encode_all({amf::Value("onStatus"), amf::Value(0.0),
                                  amf::Value(),
                                  amf::Value(std::move(info))}));
    playing_ = true;
  }
}

void ServerSession::send_avc_config(const media::Sps& sps,
                                    const media::Pps& pps) {
  send_message(kCsidVideo, MessageType::Video, 0, kMediaStreamId,
               flv::make_avc_sequence_header(sps, pps));
}

void ServerSession::send_sample(const media::MediaSample& sample) {
  if (sample.kind == media::SampleKind::Video) {
    // Direct re-frame (no NAL materialisation): this runs once per sample
    // per attached player.
    auto avcc = media::annexb_to_avcc(sample.data);
    if (!avcc) return;
    const auto cts = static_cast<std::int32_t>(
        std::llround(to_ms(sample.pts - sample.dts)));
    send_message(kCsidVideo, MessageType::Video, ms_from(sample.dts),
                 kMediaStreamId,
                 flv::make_video_tag(sample.keyframe, flv::AvcPacketType::Nalu,
                                     cts, avcc.value()));
  } else {
    send_message(kCsidAudio, MessageType::Audio, ms_from(sample.dts),
                 kMediaStreamId,
                 flv::make_audio_tag(flv::AacPacketType::Raw, sample.data));
  }
}

Bytes ServerSession::take_output() {
  Bytes b = out_.take();
  return b;
}

// ---------------- ClientSession ----------------

ClientSession::ClientSession(std::string app, std::string stream_name,
                             std::uint64_t seed, Callbacks callbacks)
    : app_(std::move(app)),
      stream_name_(std::move(stream_name)),
      cb_(std::move(callbacks)) {
  // C0+C1 go out immediately.
  const Bytes c0c1 = make_hello(0, seed ^ 0xC11E57);
  my_blob_.assign(c0c1.begin() + 1, c0c1.end());
  out_.raw(c0c1);
}

void ClientSession::send_command(std::vector<amf::Value> values) {
  Message msg;
  msg.type = MessageType::CommandAmf0;
  msg.timestamp_ms = 0;
  msg.stream_id = 0;
  msg.payload = amf::encode_all(values);
  writer_.write(out_, kCsidCommand, msg);
}

Status ClientSession::on_input(BytesView data) {
  if (state_ == State::WaitHello || state_ == State::WaitEcho) {
    inbuf_.insert(inbuf_.end(), data.begin(), data.end());
    if (state_ == State::WaitHello) {
      if (inbuf_.size() < 1 + kHandshakeBlobSize) return {};
      auto hello = parse_hello(inbuf_);
      if (!hello) return hello.error();
      out_.raw(make_echo(hello.value().blob));  // C2
      inbuf_.erase(inbuf_.begin(), inbuf_.begin() + 1 + kHandshakeBlobSize);
      state_ = State::WaitEcho;
    }
    if (state_ == State::WaitEcho) {
      if (inbuf_.size() < kHandshakeBlobSize) return {};
      if (!echo_matches(BytesView(inbuf_).subspan(0, kHandshakeBlobSize),
                        my_blob_)) {
        return Error{"rtmp_handshake", "S2 does not echo C1"};
      }
      inbuf_.erase(inbuf_.begin(), inbuf_.begin() + kHandshakeBlobSize);
      state_ = State::Connecting;
      amf::Object args{{"app", amf::Value(app_)},
                       {"flashVer", amf::Value("LNX 11,1,102,55")},
                       {"tcUrl", amf::Value("rtmp://vidman.example/" + app_)},
                       {"fpad", amf::Value(false)},
                       {"audioCodecs", amf::Value(3191.0)},
                       {"videoCodecs", amf::Value(252.0)}};
      send_command({amf::Value("connect"), amf::Value(1.0),
                    amf::Value(std::move(args))});
      if (!inbuf_.empty()) {
        if (auto s = reader_.push(inbuf_); !s) return s;
        inbuf_.clear();
      }
    }
  } else {
    if (auto s = reader_.push(data); !s) return s;
  }
  for (Message& m : reader_.take_messages()) handle_message(m);
  return {};
}

void ClientSession::handle_message(const Message& msg) {
  switch (msg.type) {
    case MessageType::CommandAmf0: {
      auto values = amf::decode_all(msg.payload);
      if (!values || values.value().empty()) return;
      const auto& v = values.value();
      const std::string& name = v[0].as_string();
      if (name == "_result" && state_ == State::Connecting) {
        state_ = State::CreatingStream;
        send_command({amf::Value("createStream"), amf::Value(next_txn_++),
                      amf::Value()});
      } else if (name == "_result" && state_ == State::CreatingStream) {
        media_stream_id_ =
            v.size() > 3 ? static_cast<std::uint32_t>(v[3].as_number()) : 1;
        state_ = State::Playing;
        send_command({amf::Value("play"), amf::Value(next_txn_++),
                      amf::Value(), amf::Value(stream_name_)});
      } else if (name == "onStatus") {
        const std::string code =
            v.size() > 3 ? v[3]["code"].as_string() : "";
        if (code == "NetStream.Play.Start") playing_ = true;
        if (cb_.on_status) cb_.on_status(code);
      }
      break;
    }
    case MessageType::Video: {
      auto tag = flv::parse_video_tag(msg.payload);
      if (!tag) return;
      if (tag.value().packet_type == flv::AvcPacketType::SequenceHeader) {
        auto cfg = media::parse_avc_decoder_config(tag.value().data);
        if (cfg && cb_.on_avc_config) cb_.on_avc_config(cfg.value());
        return;
      }
      if (cb_.on_sample) {
        media::MediaSample s;
        s.kind = media::SampleKind::Video;
        s.dts = millis(msg.timestamp_ms);
        s.pts = millis(static_cast<double>(msg.timestamp_ms) +
                       tag.value().composition_time_ms);
        s.keyframe = tag.value().keyframe;
        s.data = std::move(tag.value().data);
        cb_.on_sample(std::move(s));
      }
      break;
    }
    case MessageType::Audio: {
      auto tag = flv::parse_audio_tag(msg.payload);
      if (!tag) return;
      if (tag.value().packet_type != flv::AacPacketType::Raw) return;
      if (cb_.on_sample) {
        media::MediaSample s;
        s.kind = media::SampleKind::Audio;
        s.dts = millis(msg.timestamp_ms);
        s.pts = s.dts;
        s.keyframe = true;
        s.data = std::move(tag.value().data);
        cb_.on_sample(std::move(s));
      }
      break;
    }
    default:
      break;  // window ack etc. — accepted silently
  }
}

Bytes ClientSession::take_output() { return out_.take(); }

// ---------------- PublisherSession ----------------

PublisherSession::PublisherSession(std::string app, std::string stream_key,
                                   std::uint64_t seed)
    : app_(std::move(app)), stream_key_(std::move(stream_key)) {
  const Bytes c0c1 = make_hello(0, seed ^ 0x9B11C);
  my_blob_.assign(c0c1.begin() + 1, c0c1.end());
  out_.raw(c0c1);
}

void PublisherSession::send_command(std::vector<amf::Value> values) {
  Message msg;
  msg.type = MessageType::CommandAmf0;
  msg.payload = amf::encode_all(values);
  writer_.write(out_, kCsidCommand, msg);
}

Status PublisherSession::on_input(BytesView data) {
  if (state_ == State::WaitHello || state_ == State::WaitEcho) {
    inbuf_.insert(inbuf_.end(), data.begin(), data.end());
    if (state_ == State::WaitHello) {
      if (inbuf_.size() < 1 + kHandshakeBlobSize) return {};
      auto hello = parse_hello(inbuf_);
      if (!hello) return hello.error();
      out_.raw(make_echo(hello.value().blob));
      inbuf_.erase(inbuf_.begin(), inbuf_.begin() + 1 + kHandshakeBlobSize);
      state_ = State::WaitEcho;
    }
    if (state_ == State::WaitEcho) {
      if (inbuf_.size() < kHandshakeBlobSize) return {};
      if (!echo_matches(BytesView(inbuf_).subspan(0, kHandshakeBlobSize),
                        my_blob_)) {
        return Error{"rtmp_handshake", "S2 does not echo C1"};
      }
      inbuf_.erase(inbuf_.begin(), inbuf_.begin() + kHandshakeBlobSize);
      state_ = State::Connecting;
      amf::Object args{{"app", amf::Value(app_)},
                       {"type", amf::Value("nonprivate")},
                       {"flashVer", amf::Value("FMLE/3.0")},
                       {"tcUrl", amf::Value("rtmp://vidman.example/" + app_)}};
      send_command({amf::Value("connect"), amf::Value(1.0),
                    amf::Value(std::move(args))});
      if (!inbuf_.empty()) {
        if (auto s = reader_.push(inbuf_); !s) return s;
        inbuf_.clear();
      }
    }
  } else {
    if (auto s = reader_.push(data); !s) return s;
  }
  for (Message& m : reader_.take_messages()) handle_message(m);
  return {};
}

void PublisherSession::handle_message(const Message& msg) {
  if (msg.type != MessageType::CommandAmf0) return;
  auto values = amf::decode_all(msg.payload);
  if (!values || values.value().empty()) return;
  const auto& v = values.value();
  const std::string& name = v[0].as_string();
  if (name == "_result" && state_ == State::Connecting) {
    state_ = State::CreatingStream;
    send_command({amf::Value("releaseStream"), amf::Value(next_txn_++),
                  amf::Value(), amf::Value(stream_key_)});
    send_command({amf::Value("FCPublish"), amf::Value(next_txn_++),
                  amf::Value(), amf::Value(stream_key_)});
    send_command({amf::Value("createStream"), amf::Value(next_txn_++),
                  amf::Value()});
  } else if (name == "_result" && state_ == State::CreatingStream &&
             v.size() > 3 && v[3].is_number()) {
    media_stream_id_ = static_cast<std::uint32_t>(v[3].as_number());
    state_ = State::Publishing;
    send_command({amf::Value("publish"), amf::Value(next_txn_++),
                  amf::Value(), amf::Value(stream_key_),
                  amf::Value("live")});
  } else if (name == "onStatus") {
    const std::string code = v.size() > 3 ? v[3]["code"].as_string() : "";
    if (code == "NetStream.Publish.Start") publishing_ = true;
  }
}

void PublisherSession::send_media(std::uint32_t csid, MessageType type,
                                  std::uint32_t timestamp_ms,
                                  Bytes payload) {
  Message msg;
  msg.type = type;
  msg.timestamp_ms = timestamp_ms;
  msg.stream_id = media_stream_id_;
  msg.payload = std::move(payload);
  writer_.write(out_, csid, msg);
}

void PublisherSession::send_avc_config(const media::Sps& sps,
                                       const media::Pps& pps) {
  send_media(kCsidVideo, MessageType::Video, 0,
             flv::make_avc_sequence_header(sps, pps));
}

void PublisherSession::send_sample(const media::MediaSample& sample) {
  if (sample.kind == media::SampleKind::Video) {
    auto avcc = media::annexb_to_avcc(sample.data);
    if (!avcc) return;
    const auto cts = static_cast<std::int32_t>(
        std::llround(to_ms(sample.pts - sample.dts)));
    send_media(kCsidVideo, MessageType::Video, ms_from(sample.dts),
               flv::make_video_tag(sample.keyframe, flv::AvcPacketType::Nalu,
                                   cts, avcc.value()));
  } else {
    send_media(kCsidAudio, MessageType::Audio, ms_from(sample.dts),
               flv::make_audio_tag(flv::AacPacketType::Raw, sample.data));
  }
}

Bytes PublisherSession::take_output() { return out_.take(); }

}  // namespace psc::rtmp

// RTMP message model (one level above the chunk stream).
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace psc::rtmp {

enum class MessageType : std::uint8_t {
  SetChunkSize = 1,
  Abort = 2,
  Acknowledgement = 3,
  UserControl = 4,
  WindowAckSize = 5,
  SetPeerBandwidth = 6,
  Audio = 8,
  Video = 9,
  DataAmf0 = 18,
  CommandAmf0 = 20,
};

/// User Control event types (message type 4).
enum class UserControlEvent : std::uint16_t {
  StreamBegin = 0,
  StreamEof = 1,
  PingRequest = 6,
  PingResponse = 7,
};

struct Message {
  MessageType type = MessageType::CommandAmf0;
  std::uint32_t timestamp_ms = 0;
  std::uint32_t stream_id = 0;
  Bytes payload;
};

/// Well-known chunk stream ids used by this implementation (matching
/// common server practice).
constexpr std::uint32_t kCsidProtocol = 2;
constexpr std::uint32_t kCsidCommand = 3;
constexpr std::uint32_t kCsidAudio = 4;
constexpr std::uint32_t kCsidVideo = 6;

constexpr std::uint32_t kDefaultChunkSize = 128;

}  // namespace psc::rtmp

// RTMP client/server session state machines (sans-io).
//
// Both sides consume raw bytes via on_input() and produce raw bytes via
// take_output(); the network simulator shuttles the bytes with whatever
// bandwidth/latency it models. The server side is what a Periscope
// "vidman" EC2 origin speaks; the client side is the phone app.
//
// Flow: handshake -> connect -> createStream -> play -> StreamBegin +
// onStatus(NetStream.Play.Start) -> FLV-tagged audio/video messages.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "amf/amf0.h"
#include "flv/flv.h"
#include "media/h264.h"
#include "media/types.h"
#include "rtmp/chunk.h"
#include "rtmp/handshake.h"
#include "rtmp/message.h"

namespace psc::rtmp {

/// Server side of one connection — a viewer (play) or a broadcaster
/// (publish). Periscope phones publish their stream over exactly this
/// flow: connect -> releaseStream/FCPublish -> createStream -> publish ->
/// FLV-tagged audio/video messages upstream.
class ServerSession {
 public:
  struct PublishCallbacks {
    /// The AVC sequence header arrived from a publisher.
    std::function<void(const media::AvcDecoderConfig&)> on_avc_config;
    /// A published media sample arrived (AVCC video / ADTS audio).
    std::function<void(media::MediaSample)> on_sample;
    /// publish accepted for this stream key.
    std::function<void(const std::string&)> on_publish_start;
  };

  explicit ServerSession(std::uint64_t seed);

  /// Feed bytes received from the client.
  Status on_input(BytesView data);
  /// Drain bytes to send to the client.
  Bytes take_output();
  bool has_output() const { return !out_.bytes().empty(); }

  /// True once the client's `play` was accepted.
  bool playing() const { return playing_; }
  /// True once a client's `publish` was accepted.
  bool publishing() const { return publishing_; }
  const std::string& stream_name() const { return stream_name_; }
  const std::string& app() const { return app_; }

  /// Install publish-side callbacks (media arriving FROM the peer).
  void set_publish_callbacks(PublishCallbacks cbs) {
    publish_cbs_ = std::move(cbs);
  }

  /// Send the AVC sequence header (call once when playback starts).
  void send_avc_config(const media::Sps& sps, const media::Pps& pps);

  /// Push one encoded sample to the viewer as an FLV-tagged RTMP message.
  void send_sample(const media::MediaSample& sample);

  /// Drop buffered I/O (retirement path: the session object outlives its
  /// usefulness only to keep late simulation callbacks safe).
  void discard_buffers() {
    out_ = ByteWriter{};
    Bytes{}.swap(inbuf_);
    Bytes{}.swap(my_blob_);
    reader_.discard();
  }

 private:
  enum class State { WaitHello, WaitEcho, Command };

  void handle_command(const Message& msg);
  void handle_published_media(const Message& msg);
  void send_message(std::uint32_t csid, MessageType type,
                    std::uint32_t timestamp_ms, std::uint32_t stream_id,
                    Bytes payload);

  State state_ = State::WaitHello;
  Bytes inbuf_;  // handshake buffering
  Bytes my_blob_;
  ChunkReader reader_;
  ChunkWriter writer_;
  ByteWriter out_;
  std::uint64_t seed_;
  bool playing_ = false;
  bool publishing_ = false;
  std::string app_;
  std::string stream_name_;
  PublishCallbacks publish_cbs_;
};

/// Client side of a broadcasting connection: connects and publishes a
/// stream — what the Periscope app's capture pipeline does toward the
/// vidman origin. Media goes out as FLV-tagged RTMP messages.
class PublisherSession {
 public:
  PublisherSession(std::string app, std::string stream_key,
                   std::uint64_t seed);

  Status on_input(BytesView data);
  Bytes take_output();
  bool has_output() const { return !out_.bytes().empty(); }

  /// True once the server accepted `publish`.
  bool publishing() const { return publishing_; }

  /// Send the AVC sequence header (call once after publishing()).
  void send_avc_config(const media::Sps& sps, const media::Pps& pps);
  /// Push one encoded sample upstream.
  void send_sample(const media::MediaSample& sample);

 private:
  enum class State { WaitHello, WaitEcho, Connecting, CreatingStream,
                     Publishing };

  void handle_message(const Message& msg);
  void send_command(std::vector<amf::Value> values);
  void send_media(std::uint32_t csid, MessageType type,
                  std::uint32_t timestamp_ms, Bytes payload);

  State state_ = State::WaitHello;
  Bytes inbuf_;
  Bytes my_blob_;
  ChunkReader reader_;
  ChunkWriter writer_;
  ByteWriter out_;
  std::string app_;
  std::string stream_key_;
  bool publishing_ = false;
  double next_txn_ = 2.0;
  std::uint32_t media_stream_id_ = 1;
};

/// Client side: connects, plays a stream, surfaces media via callbacks.
class ClientSession {
 public:
  struct Callbacks {
    /// AVC sequence header received.
    std::function<void(const media::AvcDecoderConfig&)> on_avc_config;
    /// A media sample arrived. data is AVCC NALs (video) / ADTS (audio);
    /// pts/dts from the RTMP timestamp + FLV composition time.
    std::function<void(media::MediaSample)> on_sample;
    /// onStatus code strings, e.g. "NetStream.Play.Start".
    std::function<void(const std::string&)> on_status;
  };

  ClientSession(std::string app, std::string stream_name, std::uint64_t seed,
                Callbacks callbacks);

  Status on_input(BytesView data);
  Bytes take_output();
  bool has_output() const { return !out_.bytes().empty(); }

  bool playing() const { return playing_; }

  /// Drop buffered I/O (retirement path).
  void discard_buffers() {
    out_ = ByteWriter{};
    Bytes{}.swap(inbuf_);
    Bytes{}.swap(my_blob_);
    reader_.discard();
  }

 private:
  enum class State { WaitHello, WaitEcho, Connecting, CreatingStream,
                     Playing };

  void handle_message(const Message& msg);
  void send_command(std::vector<amf::Value> values);

  State state_ = State::WaitHello;
  Bytes inbuf_;
  Bytes my_blob_;
  ChunkReader reader_;
  ChunkWriter writer_;
  ByteWriter out_;
  std::string app_;
  std::string stream_name_;
  Callbacks cb_;
  bool playing_ = false;
  double next_txn_ = 2.0;
  std::uint32_t media_stream_id_ = 0;
};

}  // namespace psc::rtmp

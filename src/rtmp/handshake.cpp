#include "rtmp/handshake.h"

#include <algorithm>

namespace psc::rtmp {

Bytes make_hello(std::uint32_t time_ms, std::uint64_t seed) {
  ByteWriter w;
  w.u8(kRtmpVersion);
  w.u32be(time_ms);
  w.u32be(0);  // zero field
  std::uint64_t state = seed | 1;
  for (std::size_t i = 8; i < kHandshakeBlobSize; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    w.u8(static_cast<std::uint8_t>(state >> 33));
  }
  return w.take();
}

Bytes make_echo(BytesView peer_blob) {
  return Bytes(peer_blob.begin(), peer_blob.end());
}

Result<HandshakeHello> parse_hello(BytesView data) {
  if (data.size() < 1 + kHandshakeBlobSize) {
    return make_error("truncated", "handshake hello needs 1537 bytes");
  }
  HandshakeHello h;
  h.version = data[0];
  if (h.version != kRtmpVersion) {
    return make_error("rtmp_version", "unsupported RTMP version");
  }
  ByteReader r(data.subspan(1, kHandshakeBlobSize));
  h.time_ms = r.u32be().value();
  h.blob.assign(data.begin() + 1, data.begin() + 1 + kHandshakeBlobSize);
  return h;
}

bool echo_matches(BytesView echo, BytesView sent_blob) {
  return echo.size() >= kHandshakeBlobSize &&
         sent_blob.size() == kHandshakeBlobSize &&
         std::equal(sent_blob.begin(), sent_blob.end(), echo.begin());
}

}  // namespace psc::rtmp

// RTMP chunk stream layer: splits messages into chunks with fmt 0-3
// headers and reassembles them, handling extended timestamps and dynamic
// chunk-size changes (Adobe RTMP specification, section 5.3).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "rtmp/message.h"
#include "util/bytes.h"
#include "util/result.h"

namespace psc::rtmp {

/// Largest chunk size either side may negotiate (RTMP spec §5.4.1: valid
/// sizes are 1 to 16777215).
constexpr std::uint32_t kMaxChunkSize = 0xFFFFFF;

/// Serialises messages into the chunk stream. Tracks per-chunk-stream
/// header state so it can use compressed header formats (1/2/3) whenever
/// the previous message on the same chunk stream allows it.
class ChunkWriter {
 public:
  explicit ChunkWriter(std::uint32_t chunk_size = kDefaultChunkSize)
      : chunk_size_(chunk_size) {}

  /// Serialise one message onto `out`.
  void write(ByteWriter& out, std::uint32_t csid, const Message& msg);

  /// Change the outgoing chunk size (the caller must also send a
  /// SetChunkSize control message). Clamped to the spec's valid range
  /// [1, 0xFFFFFF] — a zero size would never make progress splitting a
  /// non-empty payload.
  void set_chunk_size(std::uint32_t size) {
    chunk_size_ = std::clamp<std::uint32_t>(size, 1, kMaxChunkSize);
  }
  std::uint32_t chunk_size() const { return chunk_size_; }

 private:
  struct PrevHeader {
    std::uint32_t timestamp = 0;
    std::uint32_t length = 0;
    MessageType type = MessageType::CommandAmf0;
    std::uint32_t stream_id = 0;
    std::uint32_t last_delta = 0;
    bool has_delta = false;
  };

  void write_basic_header(ByteWriter& out, int fmt, std::uint32_t csid) const;

  std::uint32_t chunk_size_;
  std::map<std::uint32_t, PrevHeader> prev_;
};

/// Incremental chunk stream parser: feed arbitrary byte slices; complete
/// messages come out in order. Handles interleaved chunk streams and
/// inbound SetChunkSize messages transparently.
class ChunkReader {
 public:
  /// Append bytes; parses as many complete chunks as possible.
  /// Complete messages are appended to the internal queue.
  Status push(BytesView data);

  /// Messages completed so far, in arrival order (moves them out).
  std::vector<Message> take_messages();

  std::uint32_t chunk_size() const { return chunk_size_; }
  std::uint64_t bytes_consumed() const { return consumed_; }

  /// Release all internal buffers (retirement path).
  void discard() {
    Bytes{}.swap(buffer_);
    cursor_ = 0;
    streams_.clear();
    messages_.clear();
  }

 private:
  struct StreamState {
    std::uint32_t timestamp = 0;
    std::uint32_t timestamp_delta = 0;
    std::uint32_t length = 0;
    MessageType type = MessageType::CommandAmf0;
    std::uint32_t stream_id = 0;
    bool ext_timestamp = false;
    Bytes assembly;
  };

  /// Try to parse one chunk from buffer_[cursor_...]. Returns false if
  /// more bytes are needed (cursor_ unchanged).
  Result<bool> parse_one();

  Bytes buffer_;
  std::size_t cursor_ = 0;
  std::uint32_t chunk_size_ = kDefaultChunkSize;
  std::map<std::uint32_t, StreamState> streams_;
  std::vector<Message> messages_;
  std::uint64_t consumed_ = 0;
};

}  // namespace psc::rtmp

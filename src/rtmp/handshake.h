// RTMP handshake: C0/C1/C2 and S0/S1/S2 (simple, non-digest variant).
//
// C0/S0 carry the protocol version (3). C1/S1 are 1536-byte blobs of
// time + random data; C2/S2 echo the peer's blob. Periscope served public
// streams over plaintext RTMP on port 80 (paper §3), i.e. exactly this
// handshake without a TLS layer.
#pragma once

#include <cstdint>

#include "util/bytes.h"
#include "util/result.h"

namespace psc::rtmp {

constexpr std::size_t kHandshakeBlobSize = 1536;
constexpr std::uint8_t kRtmpVersion = 3;

/// C0+C1 (or S0+S1): version byte + 1536-byte blob.
Bytes make_hello(std::uint32_t time_ms, std::uint64_t seed);

/// C2/S2: echo of the peer's 1536-byte blob.
Bytes make_echo(BytesView peer_blob);

struct HandshakeHello {
  std::uint8_t version = 0;
  std::uint32_t time_ms = 0;
  Bytes blob;  // the full 1536 bytes, for echoing
};

/// Parse C0+C1 / S0+S1 from the front of `data`.
Result<HandshakeHello> parse_hello(BytesView data);

/// Verify that an echo matches the blob we sent.
bool echo_matches(BytesView echo, BytesView sent_blob);

}  // namespace psc::rtmp

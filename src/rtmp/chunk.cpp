#include "rtmp/chunk.h"

#include <algorithm>
#include <cassert>

namespace psc::rtmp {

namespace {
constexpr std::uint32_t kExtTimestampSentinel = 0xFFFFFF;
}

void ChunkWriter::write_basic_header(ByteWriter& out, int fmt,
                                     std::uint32_t csid) const {
  assert(csid >= 2);
  if (csid <= 63) {
    out.u8(static_cast<std::uint8_t>((fmt << 6) | csid));
  } else if (csid <= 319) {
    out.u8(static_cast<std::uint8_t>(fmt << 6));
    out.u8(static_cast<std::uint8_t>(csid - 64));
  } else {
    out.u8(static_cast<std::uint8_t>((fmt << 6) | 1));
    const std::uint32_t v = csid - 64;
    out.u8(static_cast<std::uint8_t>(v & 0xFF));
    out.u8(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  }
}

void ChunkWriter::write(ByteWriter& out, std::uint32_t csid,
                        const Message& msg) {
  auto it = prev_.find(csid);
  int fmt = 0;
  std::uint32_t delta = 0;
  if (it != prev_.end() && msg.timestamp_ms >= it->second.timestamp &&
      msg.stream_id == it->second.stream_id) {
    delta = msg.timestamp_ms - it->second.timestamp;
    if (msg.payload.size() == it->second.length &&
        msg.type == it->second.type) {
      // fmt 3 message starts are legal but interact poorly with extended
      // timestamps across implementations; fmt 2 costs 3 bytes and is
      // unambiguous, so this writer stops there.
      fmt = 2;
    } else {
      fmt = 1;
    }
  }

  const std::uint32_t hdr_ts = fmt == 0 ? msg.timestamp_ms : delta;
  const bool ext_ts = hdr_ts >= kExtTimestampSentinel;

  std::size_t offset = 0;
  bool first = true;
  do {
    const std::size_t n =
        std::min<std::size_t>(chunk_size_, msg.payload.size() - offset);
    if (first) {
      write_basic_header(out, fmt, csid);
      if (fmt <= 2) {
        out.u24be(ext_ts ? kExtTimestampSentinel : hdr_ts);
      }
      if (fmt <= 1) {
        out.u24be(static_cast<std::uint32_t>(msg.payload.size()));
        out.u8(static_cast<std::uint8_t>(msg.type));
      }
      if (fmt == 0) {
        out.u32le(msg.stream_id);  // message stream id is little-endian
      }
      if (ext_ts && fmt <= 2) out.u32be(hdr_ts);
      first = false;
    } else {
      // Continuation chunks always use fmt 3.
      write_basic_header(out, 3, csid);
      if (ext_ts) out.u32be(hdr_ts);
    }
    out.raw(BytesView(msg.payload).subspan(offset, n));
    offset += n;
  } while (offset < msg.payload.size());

  PrevHeader& ph = prev_[csid];
  ph.timestamp = msg.timestamp_ms;
  ph.length = static_cast<std::uint32_t>(msg.payload.size());
  ph.type = msg.type;
  ph.stream_id = msg.stream_id;
  if (fmt != 0) {
    ph.last_delta = delta;
    ph.has_delta = true;
  } else {
    ph.has_delta = false;
  }
}

Status ChunkReader::push(BytesView data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  for (;;) {
    auto progressed = parse_one();
    if (!progressed) return progressed.error();
    if (!progressed.value()) break;
  }
  // Compact the consumed prefix.
  if (cursor_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(cursor_));
    cursor_ = 0;
  }
  return {};
}

Result<bool> ChunkReader::parse_one() {
  const BytesView buf(buffer_);
  const BytesView avail = buf.subspan(cursor_);
  if (avail.empty()) return false;

  // Basic header.
  std::size_t pos = 0;
  const int fmt = avail[0] >> 6;
  std::uint32_t csid = avail[0] & 0x3F;
  pos = 1;
  if (csid == 0) {
    if (avail.size() < 2) return false;
    csid = 64 + avail[1];
    pos = 2;
  } else if (csid == 1) {
    if (avail.size() < 3) return false;
    csid = 64 + avail[1] + (static_cast<std::uint32_t>(avail[2]) << 8);
    pos = 3;
  }

  static constexpr std::size_t kMsgHdrSize[] = {11, 7, 3, 0};
  const std::size_t hdr_size = kMsgHdrSize[fmt];
  if (avail.size() < pos + hdr_size) return false;

  StreamState& st = streams_[csid];
  const bool continuation = !st.assembly.empty();
  if (continuation && fmt != 3) {
    return make_error("rtmp_chunk",
                      "non-fmt3 header in the middle of a message");
  }

  // Decode the header into locals only: a chunk whose payload has not
  // fully arrived returns false below and is RE-PARSED from the same
  // cursor on the next push(), so nothing may touch `st` until the whole
  // chunk is known to be available. (Mutating early double-applied
  // timestamp deltas whenever a chunk straddled a push boundary.)
  std::uint32_t ts_field = 0;
  std::uint32_t length = st.length;
  MessageType type = st.type;
  std::uint32_t stream_id = st.stream_id;
  if (fmt <= 2) {
    ts_field = (static_cast<std::uint32_t>(avail[pos]) << 16) |
               (static_cast<std::uint32_t>(avail[pos + 1]) << 8) |
               avail[pos + 2];
  }
  if (fmt <= 1) {
    length = (static_cast<std::uint32_t>(avail[pos + 3]) << 16) |
             (static_cast<std::uint32_t>(avail[pos + 4]) << 8) |
             avail[pos + 5];
    type = static_cast<MessageType>(avail[pos + 6]);
  }
  if (fmt == 0) {
    stream_id = static_cast<std::uint32_t>(avail[pos + 7]) |
                (static_cast<std::uint32_t>(avail[pos + 8]) << 8) |
                (static_cast<std::uint32_t>(avail[pos + 9]) << 16) |
                (static_cast<std::uint32_t>(avail[pos + 10]) << 24);
  }
  pos += hdr_size;

  // Extended timestamp.
  bool ext = false;
  if (fmt <= 2) {
    ext = ts_field == 0xFFFFFF;
  } else {
    ext = st.ext_timestamp && !continuation;
  }
  std::uint32_t full_ts = ts_field;
  if (ext) {
    if (avail.size() < pos + 4) return false;
    full_ts = (static_cast<std::uint32_t>(avail[pos]) << 24) |
              (static_cast<std::uint32_t>(avail[pos + 1]) << 16) |
              (static_cast<std::uint32_t>(avail[pos + 2]) << 8) |
              avail[pos + 3];
    pos += 4;
  } else if (st.ext_timestamp && continuation) {
    // Continuation chunks of an extended-timestamp message repeat the
    // 4-byte extended timestamp in this implementation's writer.
    if (avail.size() < pos + 4) return false;
    pos += 4;
  }

  const std::size_t already = st.assembly.size();
  const std::size_t want =
      std::min<std::size_t>(chunk_size_, length - already);
  if (avail.size() < pos + want) return false;

  // The whole chunk is in the buffer — commit to the stream state.
  st.length = length;
  st.type = type;
  st.stream_id = stream_id;
  if (fmt <= 2) st.ext_timestamp = ext;
  if (!continuation) {
    if (fmt == 0) {
      st.timestamp = full_ts;
      st.timestamp_delta = 0;
    } else {
      const std::uint32_t delta = (fmt == 3) ? st.timestamp_delta : full_ts;
      st.timestamp_delta = delta;
      st.timestamp += delta;
    }
  }
  st.assembly.insert(st.assembly.end(), avail.begin() + pos,
                     avail.begin() + pos + want);
  pos += want;
  cursor_ += pos;
  consumed_ += pos;

  if (st.assembly.size() == st.length) {
    Message msg;
    msg.type = st.type;
    msg.timestamp_ms = st.timestamp;
    msg.stream_id = st.stream_id;
    msg.payload = std::move(st.assembly);
    st.assembly.clear();
    // Inbound chunk-size changes apply to subsequent chunks.
    if (msg.type == MessageType::SetChunkSize && msg.payload.size() >= 4) {
      ByteReader r(msg.payload);
      const std::uint32_t requested = r.u32be().value() & 0x7FFFFFFF;
      // A zero chunk size would make every subsequent chunk carry zero
      // payload bytes: messages could never complete and a peer could
      // stream headers forever. The spec's valid range is [1, 0xFFFFFF].
      if (requested == 0) {
        return make_error("rtmp_chunk", "SetChunkSize of 0 is invalid");
      }
      chunk_size_ = std::min<std::uint32_t>(requested, kMaxChunkSize);
    }
    messages_.push_back(std::move(msg));
  }
  return true;
}

std::vector<Message> ChunkReader::take_messages() {
  std::vector<Message> out = std::move(messages_);
  messages_.clear();
  return out;
}

}  // namespace psc::rtmp

// ASCII renderings of the figure types used in the paper: CDF curves,
// boxplot panels, scatter plots and bar charts. The bench binaries print
// these next to the numeric series so the figure "shape" can be eyeballed
// in a terminal.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/stats.h"

namespace psc::analysis {

struct Series {
  std::string label;
  std::vector<double> values;
};

/// Multi-series CDF plot. X range is [x_lo, x_hi]; each series gets its own
/// glyph. `width`/`height` are the plot body dimensions in characters.
std::string render_cdf(std::span<const Series> series, double x_lo,
                       double x_hi, const std::string& x_label,
                       int width = 72, int height = 20);

/// One horizontal boxplot row per series, on a shared x axis.
std::string render_boxplots(std::span<const Series> series, double x_lo,
                            double x_hi, const std::string& x_label,
                            int width = 72);

/// Scatter plot of (x, y) pairs.
std::string render_scatter(std::span<const double> xs,
                           std::span<const double> ys,
                           const std::string& x_label,
                           const std::string& y_label, int width = 72,
                           int height = 24);

struct Bar {
  std::string label;
  double value = 0;
};

/// Horizontal bar chart (Fig. 8 style).
std::string render_bars(std::span<const Bar> bars, const std::string& unit,
                        int width = 60);

}  // namespace psc::analysis

#include "analysis/charts.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace psc::analysis {

namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

int x_to_col(double x, double lo, double hi, int width) {
  if (hi <= lo) return 0;
  const double f = (x - lo) / (hi - lo);
  return std::clamp(static_cast<int>(std::lround(f * (width - 1))), 0,
                    width - 1);
}

std::string x_axis(double lo, double hi, int width,
                   const std::string& label) {
  std::string out(static_cast<std::size_t>(width), '-');
  out += "\n";
  out += strf("%-10.3g", lo);
  const std::string mid = strf("%.3g", (lo + hi) / 2);
  const std::string right = strf("%10.3g", hi);
  const int mid_col = width / 2 - static_cast<int>(mid.size()) / 2;
  while (static_cast<int>(out.size()) -
             (static_cast<int>(out.find('\n')) + 1) <
         mid_col) {
    out += ' ';
  }
  out += mid;
  while (static_cast<int>(out.size()) -
             (static_cast<int>(out.find('\n')) + 1) <
         width - static_cast<int>(right.size())) {
    out += ' ';
  }
  out += right;
  out += "\n";
  out += "  " + label + "\n";
  return out;
}

}  // namespace

std::string render_cdf(std::span<const Series> series, double x_lo,
                       double x_hi, const std::string& x_label, int width,
                       int height) {
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t s = 0; s < series.size(); ++s) {
    if (series[s].values.empty()) continue;
    const Ecdf cdf(series[s].values);
    const char glyph = kGlyphs[s % sizeof(kGlyphs)];
    for (int col = 0; col < width; ++col) {
      const double x =
          x_lo + (x_hi - x_lo) * static_cast<double>(col) / (width - 1);
      const double p = cdf(x);
      const int row =
          std::clamp(static_cast<int>(std::lround((1.0 - p) * (height - 1))),
                     0, height - 1);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          glyph;
    }
  }
  std::string out;
  for (int row = 0; row < height; ++row) {
    const double p = 1.0 - static_cast<double>(row) / (height - 1);
    out += strf("%4.2f |", p);
    out += grid[static_cast<std::size_t>(row)];
    out += "\n";
  }
  out += "     +";
  out += x_axis(x_lo, x_hi, width, x_label);
  for (std::size_t s = 0; s < series.size(); ++s) {
    out += strf("     %c = %s (n=%zu)\n", kGlyphs[s % sizeof(kGlyphs)],
                series[s].label.c_str(), series[s].values.size());
  }
  return out;
}

std::string render_boxplots(std::span<const Series> series, double x_lo,
                            double x_hi, const std::string& x_label,
                            int width) {
  std::string out;
  std::size_t label_w = 0;
  for (const auto& s : series) label_w = std::max(label_w, s.label.size());
  for (const auto& s : series) {
    const BoxplotSummary b = boxplot(s.values);
    std::string row(static_cast<std::size_t>(width), ' ');
    auto col = [&](double x) { return x_to_col(x, x_lo, x_hi, width); };
    if (b.n > 0) {
      const int wl = col(b.whisker_lo), q1 = col(b.q1), md = col(b.median),
                q3 = col(b.q3), wh = col(b.whisker_hi);
      for (int c = wl; c <= wh; ++c) row[static_cast<std::size_t>(c)] = '-';
      for (int c = q1; c <= q3; ++c) row[static_cast<std::size_t>(c)] = '=';
      row[static_cast<std::size_t>(wl)] = '|';
      row[static_cast<std::size_t>(wh)] = '|';
      row[static_cast<std::size_t>(md)] = 'M';
      for (double o : b.outliers) {
        const auto c = static_cast<std::size_t>(col(o));
        if (row[c] == ' ') row[c] = 'o';
      }
    }
    out += strf("%-*s |", static_cast<int>(label_w), s.label.c_str());
    out += row;
    out += strf("| n=%zu med=%.3g\n", b.n, b.median);
  }
  out += std::string(label_w + 2, ' ');
  out += x_axis(x_lo, x_hi, width, x_label);
  return out;
}

std::string render_scatter(std::span<const double> xs,
                           std::span<const double> ys,
                           const std::string& x_label,
                           const std::string& y_label, int width,
                           int height) {
  if (xs.empty() || xs.size() != ys.size()) return "(no data)\n";
  const double x_lo = minimum(xs), x_hi = maximum(xs);
  const double y_lo = minimum(ys), y_hi = maximum(ys);
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const int c = x_to_col(xs[i], x_lo, x_hi, width);
    const int r =
        height - 1 -
        x_to_col(ys[i], y_lo, y_hi == y_lo ? y_lo + 1 : y_hi, height);
    auto& cell = grid[static_cast<std::size_t>(std::clamp(r, 0, height - 1))]
                     [static_cast<std::size_t>(c)];
    cell = cell == ' ' ? '.' : (cell == '.' ? 'o' : '@');
  }
  std::string out = strf("  %s\n", y_label.c_str());
  for (int r = 0; r < height; ++r) {
    const double y =
        y_hi - (y_hi - y_lo) * static_cast<double>(r) / (height - 1);
    out += strf("%9.3g |", y);
    out += grid[static_cast<std::size_t>(r)];
    out += "\n";
  }
  out += "          +";
  out += x_axis(x_lo, x_hi, width, x_label);
  return out;
}

std::string render_bars(std::span<const Bar> bars, const std::string& unit,
                        int width) {
  double vmax = 0;
  std::size_t label_w = 0;
  for (const auto& b : bars) {
    vmax = std::max(vmax, b.value);
    label_w = std::max(label_w, b.label.size());
  }
  if (vmax <= 0) vmax = 1;
  std::string out;
  for (const auto& b : bars) {
    const int len = static_cast<int>(std::lround(b.value / vmax * width));
    out += strf("%-*s |%s %.0f %s\n", static_cast<int>(label_w),
                b.label.c_str(), std::string(static_cast<std::size_t>(len), '#').c_str(),
                b.value, unit.c_str());
  }
  return out;
}

}  // namespace psc::analysis

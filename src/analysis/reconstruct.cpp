#include "analysis/reconstruct.h"

#include <algorithm>
#include <cmath>

#include "analysis/stats.h"
#include "flv/flv.h"
#include "mpegts/mpegts.h"
#include "rtmp/chunk.h"
#include "rtmp/handshake.h"
#include "rtmp/message.h"

namespace psc::analysis {

namespace {

constexpr double kNominalFps = 30.0;

/// Shared per-stream decoding state: active parameter sets.
struct DecodeState {
  std::optional<media::Sps> sps;
  std::optional<media::Pps> pps;
};

/// Analyse one video access unit (a list of NALs): update parameter sets,
/// extract slice header + NTP SEI.
void analyze_access_unit(const std::vector<media::NalUnit>& nals,
                         DecodeState& state, Duration pts, TimePoint arrival,
                         std::size_t wire_bytes, StreamAnalysis& out) {
  FrameRecord rec;
  rec.pts = pts;
  rec.arrival = arrival;
  rec.bytes = wire_bytes;
  bool have_slice = false;
  for (const media::NalUnit& nal : nals) {
    switch (nal.type) {
      case media::NalType::Sps: {
        auto sps = media::parse_sps_rbsp(nal.rbsp);
        if (sps) {
          state.sps = sps.value();
          out.width = sps.value().width;
          out.height = sps.value().height;
        }
        break;
      }
      case media::NalType::Pps: {
        auto pps = media::parse_pps_rbsp(nal.rbsp);
        if (pps) state.pps = pps.value();
        break;
      }
      case media::NalType::Sei: {
        auto ntp = media::parse_ntp_sei(nal);
        if (ntp) {
          out.ntp_marks.push_back(
              NtpMark{media::seconds_from_ntp(*ntp), arrival});
        }
        break;
      }
      case media::NalType::IdrSlice:
      case media::NalType::NonIdrSlice: {
        if (!state.sps || !state.pps) break;
        auto hdr = media::parse_slice_header(nal, *state.sps, *state.pps);
        if (hdr) {
          rec.type = hdr.value().type;
          rec.qp = hdr.value().qp;
          have_slice = true;
        }
        break;
      }
      default:
        break;
    }
  }
  if (have_slice) out.frames.push_back(rec);
}

void note_adts(BytesView data, StreamAnalysis& out,
               std::size_t* audio_bytes) {
  auto info = media::parse_adts_header(data);
  if (!info) return;
  out.audio_sample_rate = info.value().sample_rate;
  out.audio_channels = info.value().channels;
  *audio_bytes += data.size();
}

}  // namespace

double StreamAnalysis::video_duration_s() const {
  if (frames.size() < 2) return 0;
  double lo = 1e18, hi = -1e18;
  for (const FrameRecord& f : frames) {
    lo = std::min(lo, to_s(f.pts));
    hi = std::max(hi, to_s(f.pts));
  }
  return hi - lo + 1.0 / kNominalFps;
}

double StreamAnalysis::video_bitrate_bps() const {
  const double dur = video_duration_s();
  if (dur <= 0) return 0;
  std::size_t bytes = 0;
  for (const FrameRecord& f : frames) bytes += f.bytes;
  return static_cast<double>(bytes) * 8.0 / dur;
}

double StreamAnalysis::fps() const {
  const double dur = video_duration_s();
  return dur <= 0 ? 0 : static_cast<double>(frames.size()) / dur;
}

double StreamAnalysis::avg_qp() const {
  if (frames.empty()) return 0;
  double s = 0;
  for (const FrameRecord& f : frames) s += f.qp;
  return s / static_cast<double>(frames.size());
}

double StreamAnalysis::qp_stddev() const {
  std::vector<double> qps;
  qps.reserve(frames.size());
  for (const FrameRecord& f : frames) qps.push_back(f.qp);
  return stddev(qps);
}

FramePattern StreamAnalysis::frame_pattern() const {
  bool has_b = false, has_p = false;
  for (const FrameRecord& f : frames) {
    if (f.type == media::FrameType::B) has_b = true;
    if (f.type == media::FrameType::P) has_p = true;
  }
  if (has_b) return FramePattern::IBP;
  if (has_p) return FramePattern::IPOnly;
  return FramePattern::IOnly;
}

std::size_t StreamAnalysis::missing_frames() const {
  if (frames.size() < 2) return 0;
  std::vector<double> pts;
  pts.reserve(frames.size());
  for (const FrameRecord& f : frames) pts.push_back(to_s(f.pts));
  std::sort(pts.begin(), pts.end());
  const double period = 1.0 / kNominalFps;
  std::size_t missing = 0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double gap = pts[i] - pts[i - 1];
    if (gap > 1.5 * period) {
      missing += static_cast<std::size_t>(std::lround(gap / period)) - 1;
    }
  }
  return missing;
}

Result<StreamAnalysis> reconstruct_rtmp(const net::Capture& cap) {
  StreamAnalysis out;
  const Bytes& payload = cap.payload();
  // Skip S0+S1+S2.
  const std::size_t hs = 1 + 2 * rtmp::kHandshakeBlobSize;
  if (payload.size() < hs) {
    return make_error("capture", "capture shorter than RTMP handshake");
  }
  DecodeState state;
  std::size_t audio_bytes = 0;
  rtmp::ChunkReader reader;
  // Feed packet by packet so message completion times are known.
  for (const net::Capture::Packet& pkt : cap.packets()) {
    const std::size_t begin = std::max(pkt.offset, hs);
    const std::size_t end = pkt.offset + pkt.size;
    if (end <= begin) continue;
    if (auto s = reader.push(
            BytesView(payload).subspan(begin, end - begin));
        !s) {
      return s.error();
    }
    for (const rtmp::Message& msg : reader.take_messages()) {
      if (msg.type == rtmp::MessageType::Video) {
        auto tag = flv::parse_video_tag(msg.payload);
        if (!tag) continue;
        if (tag.value().packet_type == flv::AvcPacketType::SequenceHeader) {
          auto cfg = media::parse_avc_decoder_config(tag.value().data);
          if (cfg) {
            state.sps = cfg.value().sps;
            state.pps = cfg.value().pps;
            out.width = cfg.value().sps.width;
            out.height = cfg.value().sps.height;
          }
          continue;
        }
        auto nals = media::split_avcc(tag.value().data);
        if (!nals) continue;
        const Duration pts =
            millis(static_cast<double>(msg.timestamp_ms) +
                   tag.value().composition_time_ms);
        analyze_access_unit(nals.value(), state, pts, pkt.time,
                            msg.payload.size(), out);
      } else if (msg.type == rtmp::MessageType::Audio) {
        auto tag = flv::parse_audio_tag(msg.payload);
        if (!tag) continue;
        note_adts(tag.value().data, out, &audio_bytes);
      }
    }
  }
  const double dur = out.video_duration_s();
  if (dur > 0) {
    out.audio_bitrate_bps = static_cast<double>(audio_bytes) * 8.0 / dur;
  }
  return out;
}

Result<StreamAnalysis> reconstruct_hls(const net::Capture& cap) {
  StreamAnalysis out;
  DecodeState state;
  std::size_t audio_bytes = 0;
  const Bytes& payload = cap.payload();

  for (const net::Capture::Packet& pkt : cap.packets()) {
    // Each capture record is one GET response = one MPEG-TS file.
    mpegts::TsDemuxer demux;
    if (auto s = demux.push(BytesView(payload).subspan(pkt.offset, pkt.size));
        !s) {
      return s.error();
    }
    demux.flush();

    SegmentInfo seg;
    seg.bytes = pkt.size;
    double pts_lo = 1e18, pts_hi = -1e18;
    std::size_t seg_video_bytes = 0;
    std::vector<double> seg_qps;
    for (const mpegts::TsSample& s : demux.take_samples()) {
      if (s.kind == media::SampleKind::Video) {
        auto nals = media::split_annexb(s.data);
        if (!nals) continue;
        const std::size_t before = out.frames.size();
        analyze_access_unit(nals.value(), state, s.pts, pkt.time,
                            s.data.size(), out);
        if (out.frames.size() > before) {
          seg_qps.push_back(out.frames.back().qp);
          ++seg.frames;
        }
        seg_video_bytes += s.data.size();
        pts_lo = std::min(pts_lo, to_s(s.pts));
        pts_hi = std::max(pts_hi, to_s(s.pts));
      } else {
        note_adts(s.data, out, &audio_bytes);
      }
    }
    if (seg.frames > 0 && pts_hi > pts_lo) {
      seg.duration = seconds(pts_hi - pts_lo + 1.0 / kNominalFps);
      seg.video_bitrate_bps =
          static_cast<double>(seg_video_bytes) * 8.0 / to_s(seg.duration);
      seg.avg_qp = mean(seg_qps);
      out.segments.push_back(seg);
    }
  }
  const double dur = out.video_duration_s();
  if (dur > 0) {
    out.audio_bitrate_bps = static_cast<double>(audio_bytes) * 8.0 / dur;
  }
  return out;
}

}  // namespace psc::analysis

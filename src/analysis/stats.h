// Descriptive statistics used throughout the study: moments, quantiles,
// five-number boxplot summaries, ECDFs, histograms, Pearson correlation and
// Welch's t-test (the paper uses Welch's t-test to compare the Galaxy S3
// and S4 datasets, and boxplots/CDFs for nearly every figure).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace psc::analysis {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // sample variance (n-1)
double stddev(std::span<const double> xs);
double minimum(std::span<const double> xs);
double maximum(std::span<const double> xs);

/// Linear-interpolation quantile (type 7, same as numpy default).
/// q in [0,1]. Input need not be sorted.
double quantile(std::span<const double> xs, double q);

double median(std::span<const double> xs);

/// Five-number summary + whiskers as drawn by a Tukey boxplot
/// (whiskers at the most extreme data points within 1.5*IQR of the box).
struct BoxplotSummary {
  std::size_t n = 0;
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  double whisker_lo = 0, whisker_hi = 0;
  double mean = 0;
  std::vector<double> outliers;

  std::string to_string() const;
};

BoxplotSummary boxplot(std::span<const double> xs);

/// Empirical CDF: evaluate at x, or extract the full step function.
class Ecdf {
 public:
  explicit Ecdf(std::span<const double> xs);

  /// P(X <= x).
  double operator()(double x) const;
  /// Inverse: smallest sample value v with P(X <= v) >= p.
  double inverse(double p) const;

  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

struct HistogramBin {
  double lo = 0, hi = 0;
  std::size_t count = 0;
};

/// Fixed-width histogram over [lo, hi) with `bins` bins; values outside
/// are clamped into the first/last bin.
std::vector<HistogramBin> histogram(std::span<const double> xs, double lo,
                                    double hi, std::size_t bins);

/// Pearson product-moment correlation coefficient. Returns 0 for
/// degenerate inputs (size < 2 or zero variance).
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Welch's unequal-variance t-test (two-sided).
struct WelchResult {
  double t = 0;         // test statistic
  double df = 0;        // Welch-Satterthwaite degrees of freedom
  double p_value = 1;   // two-sided
  bool valid = false;   // false when inputs are degenerate
};

WelchResult welch_t_test(std::span<const double> a, std::span<const double> b);

/// Regularised incomplete beta function (exposed for tests; used by the
/// t-distribution CDF inside welch_t_test).
double incomplete_beta(double a, double b, double x);

/// Spearman rank correlation (Pearson on ranks, ties get mean ranks) —
/// robust companion to pearson() for the §5 correlation analysis, since
/// several QoE metrics are heavy-tailed.
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Two-sample Kolmogorov-Smirnov test.
struct KsResult {
  double statistic = 0;  // sup |F1 - F2|
  double p_value = 1;    // asymptotic (Smirnov) approximation
  bool valid = false;
};

KsResult ks_test(std::span<const double> a, std::span<const double> b);

/// --- Weighted samples (hybrid-fidelity cohort reweighting) ---
///
/// A sampled cohort observes each QoE value with a statistical weight
/// (1/sample_rate aggregate viewers per session). Its CDFs must be
/// weight-normalised or a mixed-rate comparison is biased.

/// Weighted quantile: the smallest sample value whose cumulative weight
/// fraction reaches q (step inverse of the weighted ECDF). xs and ws are
/// index-aligned; non-positive weights are ignored.
double weighted_quantile(std::span<const double> xs,
                         std::span<const double> ws, double q);

/// Weighted two-sample KS distance: sup |F_a - F_b| over the pooled
/// sample points, each F the weight-normalised ECDF. No p-value — the
/// effective sample size of a reweighted cohort is ill-defined. Returns
/// 0 when either sample carries no weight.
double weighted_ks_distance(std::span<const double> a,
                            std::span<const double> wa,
                            std::span<const double> b,
                            std::span<const double> wb);

}  // namespace psc::analysis

#include "analysis/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "util/strings.h"

namespace psc::analysis {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double minimum(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double maximum(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double idx = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(idx));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

std::string BoxplotSummary::to_string() const {
  return strf(
      "n=%zu min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g mean=%.3g "
      "whiskers=[%.3g,%.3g] outliers=%zu",
      n, min, q1, median, q3, max, mean, whisker_lo, whisker_hi,
      outliers.size());
}

BoxplotSummary boxplot(std::span<const double> xs) {
  BoxplotSummary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  s.min = v.front();
  s.max = v.back();
  s.q1 = quantile(v, 0.25);
  s.median = quantile(v, 0.5);
  s.q3 = quantile(v, 0.75);
  s.mean = analysis::mean(v);
  const double iqr = s.q3 - s.q1;
  const double lo_fence = s.q1 - 1.5 * iqr;
  const double hi_fence = s.q3 + 1.5 * iqr;
  s.whisker_lo = s.max;
  s.whisker_hi = s.min;
  for (double x : v) {
    if (x >= lo_fence && x < s.whisker_lo) s.whisker_lo = x;
    if (x <= hi_fence && x > s.whisker_hi) s.whisker_hi = x;
    if (x < lo_fence || x > hi_fence) s.outliers.push_back(x);
  }
  return s;
}

Ecdf::Ecdf(std::span<const double> xs) : sorted_(xs.begin(), xs.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::inverse(double p) const {
  if (sorted_.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const std::size_t n = sorted_.size();
  const std::size_t idx = p <= 0.0
                              ? 0
                              : std::min(n - 1, static_cast<std::size_t>(
                                                    std::ceil(p * n) - 1));
  return sorted_[idx];
}

std::vector<HistogramBin> histogram(std::span<const double> xs, double lo,
                                    double hi, std::size_t bins) {
  assert(bins > 0 && hi > lo);
  std::vector<HistogramBin> out(bins);
  const double w = (hi - lo) / static_cast<double>(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    out[i].lo = lo + w * static_cast<double>(i);
    out[i].hi = out[i].lo + w;
  }
  for (double x : xs) {
    auto idx = static_cast<std::ptrdiff_t>((x - lo) / w);
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(bins) - 1);
    ++out[static_cast<std::size_t>(idx)].count;
  }
  return out;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0 || syy <= 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double incomplete_beta(double a, double b, double x) {
  // Continued-fraction evaluation (Lentz), per Numerical Recipes 6.4.
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_beta =
      std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  const double front =
      std::exp(ln_beta + a * std::log(x) + b * std::log(1.0 - x));

  auto contfrac = [](double aa, double bb, double xx) {
    constexpr int kMaxIter = 300;
    constexpr double kEps = 3e-14;
    constexpr double kTiny = 1e-300;
    double qab = aa + bb, qap = aa + 1.0, qam = aa - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * xx / qap;
    if (std::fabs(d) < kTiny) d = kTiny;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= kMaxIter; ++m) {
      const int m2 = 2 * m;
      double num = m * (bb - m) * xx / ((qam + m2) * (aa + m2));
      d = 1.0 + num * d;
      if (std::fabs(d) < kTiny) d = kTiny;
      c = 1.0 + num / c;
      if (std::fabs(c) < kTiny) c = kTiny;
      d = 1.0 / d;
      h *= d * c;
      num = -(aa + m) * (qab + m) * xx / ((aa + m2) * (qap + m2));
      d = 1.0 + num * d;
      if (std::fabs(d) < kTiny) d = kTiny;
      c = 1.0 + num / c;
      if (std::fabs(c) < kTiny) c = kTiny;
      d = 1.0 / d;
      const double del = d * c;
      h *= del;
      if (std::fabs(del - 1.0) < kEps) break;
    }
    return h;
  };

  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * contfrac(a, b, x) / a;
  }
  return 1.0 - std::exp(std::lgamma(a + b) - std::lgamma(b) - std::lgamma(a) +
                        b * std::log(1.0 - x) + a * std::log(x)) *
                   contfrac(b, a, 1.0 - x) / b;
}

namespace {

/// Mean ranks (1-based), ties averaged.
std::vector<double> ranks_of(std::span<const double> xs) {
  std::vector<std::size_t> idx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [&xs](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(xs.size());
  std::size_t i = 0;
  while (i < idx.size()) {
    std::size_t j = i;
    while (j + 1 < idx.size() && xs[idx[j + 1]] == xs[idx[i]]) ++j;
    const double mean_rank = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[idx[k]] = mean_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const std::vector<double> rx = ranks_of(xs);
  const std::vector<double> ry = ranks_of(ys);
  return pearson(rx, ry);
}

KsResult ks_test(std::span<const double> a, std::span<const double> b) {
  KsResult r;
  if (a.empty() || b.empty()) return r;
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t i = 0, j = 0;
  double d = 0;
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) / na -
                              static_cast<double>(j) / nb));
  }
  r.statistic = d;
  // Smirnov's asymptotic tail: Q(λ) = 2 Σ (-1)^{k-1} e^{-2 k² λ²}.
  const double en = std::sqrt(na * nb / (na + nb));
  const double lambda = (en + 0.12 + 0.11 / en) * d;
  double p = 0;
  for (int k = 1; k <= 100; ++k) {
    const double term =
        2.0 * ((k % 2 == 1) ? 1.0 : -1.0) *
        std::exp(-2.0 * k * k * lambda * lambda);
    p += term;
    if (std::fabs(term) < 1e-12) break;
  }
  r.p_value = std::clamp(p, 0.0, 1.0);
  r.valid = true;
  return r;
}

WelchResult welch_t_test(std::span<const double> a, std::span<const double> b) {
  WelchResult r;
  if (a.size() < 2 || b.size() < 2) return r;
  const double ma = mean(a), mb = mean(b);
  const double va = variance(a), vb = variance(b);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double se2 = va / na + vb / nb;
  if (se2 <= 0) return r;
  r.t = (ma - mb) / std::sqrt(se2);
  const double num = se2 * se2;
  const double den = (va / na) * (va / na) / (na - 1) +
                     (vb / nb) * (vb / nb) / (nb - 1);
  r.df = den > 0 ? num / den : na + nb - 2;
  // Two-sided p-value from the t CDF via the incomplete beta function:
  // P(T > |t|) = I_{df/(df+t^2)}(df/2, 1/2).
  const double x = r.df / (r.df + r.t * r.t);
  r.p_value = incomplete_beta(r.df / 2.0, 0.5, x);
  r.p_value = std::clamp(r.p_value, 0.0, 1.0);
  r.valid = true;
  return r;
}

namespace {

/// (value, weight) pairs sorted by value, dropping non-positive weights.
std::vector<std::pair<double, double>> weighted_sorted(
    std::span<const double> xs, std::span<const double> ws) {
  const std::size_t n = std::min(xs.size(), ws.size());
  std::vector<std::pair<double, double>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (ws[i] > 0) out.emplace_back(xs[i], ws[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

double weighted_quantile(std::span<const double> xs,
                         std::span<const double> ws, double q) {
  const auto sorted = weighted_sorted(xs, ws);
  if (sorted.empty()) return 0;
  double total = 0;
  for (const auto& [x, w] : sorted) total += w;
  q = std::clamp(q, 0.0, 1.0);
  double cum = 0;
  for (const auto& [x, w] : sorted) {
    cum += w;
    if (cum >= q * total) return x;
  }
  return sorted.back().first;
}

double weighted_ks_distance(std::span<const double> a,
                            std::span<const double> wa,
                            std::span<const double> b,
                            std::span<const double> wb) {
  const auto sa = weighted_sorted(a, wa);
  const auto sb = weighted_sorted(b, wb);
  if (sa.empty() || sb.empty()) return 0;
  double ta = 0, tb = 0;
  for (const auto& [x, w] : sa) ta += w;
  for (const auto& [x, w] : sb) tb += w;
  // Walk the pooled sample points; after absorbing every sample <= x the
  // running sums are F_a(x) and F_b(x).
  std::size_t ia = 0, ib = 0;
  double ca = 0, cb = 0, d = 0;
  while (ia < sa.size() || ib < sb.size()) {
    const double x = (ib >= sb.size() ||
                      (ia < sa.size() && sa[ia].first <= sb[ib].first))
                         ? sa[ia].first
                         : sb[ib].first;
    while (ia < sa.size() && sa[ia].first <= x) ca += sa[ia++].second;
    while (ib < sb.size() && sb[ib].first <= x) cb += sb[ib++].second;
    d = std::max(d, std::fabs(ca / ta - cb / tb));
  }
  return d;
}

}  // namespace psc::analysis

// Offline stream reconstruction from packet captures — the simulation's
// equivalent of the paper's wireshark + libav pipeline (§2):
//
//   "After finding and reconstructing the multimedia TCP stream using
//    wireshark, single segments are isolated by saving the response of
//    HTTP GET request which contains an MPEG-TS file ready to be played.
//    For RTMP, we exploit the wireshark dissector which can extract the
//    audio and video chunks."
//
// reconstruct_rtmp() re-dissects the raw RTMP chunk stream (skipping the
// handshake) from a client-side capture; reconstruct_hls() demuxes each
// captured MPEG-TS segment. Both recover per-frame QP (slice headers),
// frame types, resolution (SPS), per-frame sizes, ADTS audio parameters
// and the broadcaster's NTP timestamp SEIs — everything §5.2 reports.
// Nothing here reads encoder-side ground truth.
#pragma once

#include <optional>
#include <vector>

#include "media/aac.h"
#include "media/h264.h"
#include "media/types.h"
#include "net/capture.h"
#include "util/result.h"

namespace psc::analysis {

struct FrameRecord {
  media::FrameType type = media::FrameType::I;
  int qp = 0;
  std::size_t bytes = 0;  // access-unit size on the wire
  Duration pts{0};
  TimePoint arrival{};
};

/// An NTP timestamp SEI observed in the stream, with the arrival time of
/// the packet that contained it.
struct NtpMark {
  double ntp_s = 0;
  TimePoint arrival{};

  double delivery_latency_s() const { return to_s(arrival) - ntp_s; }
};

/// Per-HLS-segment statistics (paper Fig. 6(b), 7(b)).
struct SegmentInfo {
  Duration duration{0};
  std::size_t bytes = 0;
  double video_bitrate_bps = 0;
  double avg_qp = 0;
  std::size_t frames = 0;
};

enum class FramePattern { IBP, IPOnly, IOnly };

struct StreamAnalysis {
  int width = 0, height = 0;
  std::vector<FrameRecord> frames;
  std::vector<NtpMark> ntp_marks;
  std::vector<SegmentInfo> segments;  // HLS only

  int audio_sample_rate = 0;
  int audio_channels = 0;
  double audio_bitrate_bps = 0;

  double video_duration_s() const;
  double video_bitrate_bps() const;
  double fps() const;
  double avg_qp() const;
  double qp_stddev() const;
  FramePattern frame_pattern() const;
  /// Frames missing from the PTS timeline (concealment required).
  std::size_t missing_frames() const;
};

/// Dissect a client-side RTMP capture (handshake + chunk stream).
Result<StreamAnalysis> reconstruct_rtmp(const net::Capture& cap);

/// Demux an HLS capture where each capture record is one complete
/// MPEG-TS segment (one HTTP GET response).
Result<StreamAnalysis> reconstruct_hls(const net::Capture& cap);

}  // namespace psc::analysis

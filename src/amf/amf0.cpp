#include "amf/amf0.h"

namespace psc::amf {

namespace {
const Value& null_value() {
  static const Value v;
  return v;
}

void encode_string_body(ByteWriter& w, const std::string& s) {
  w.u16be(static_cast<std::uint16_t>(s.size()));
  w.raw(s);
}

void encode_object_body(ByteWriter& w, const Object& obj) {
  for (const auto& [k, v] : obj) {
    encode_string_body(w, k);
    encode(w, v);
  }
  w.u16be(0);  // empty key
  w.u8(static_cast<std::uint8_t>(Type::ObjectEnd));
}

}  // namespace

const Value& Value::operator[](const std::string& key) const {
  if (!is_object()) return null_value();
  auto it = obj_->find(key);
  return it == obj_->end() ? null_value() : it->second;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::Number:
      return num_ == other.num_;
    case Type::Boolean:
      return bool_ == other.bool_;
    case Type::String:
      return str_ == other.str_;
    case Type::Object:
    case Type::EcmaArray:
      return as_object() == other.as_object();
    case Type::Null:
      return true;
    default:
      return false;
  }
}

void encode(ByteWriter& w, const Value& v) {
  w.u8(static_cast<std::uint8_t>(v.type()));
  switch (v.type()) {
    case Type::Number:
      w.f64be(v.as_number());
      break;
    case Type::Boolean:
      w.u8(v.as_bool() ? 1 : 0);
      break;
    case Type::String:
      encode_string_body(w, v.as_string());
      break;
    case Type::Object:
      encode_object_body(w, v.as_object());
      break;
    case Type::EcmaArray:
      w.u32be(static_cast<std::uint32_t>(v.as_object().size()));
      encode_object_body(w, v.as_object());
      break;
    case Type::Null:
      break;
    default:
      break;
  }
}

Bytes encode_all(const std::vector<Value>& values) {
  ByteWriter w;
  for (const Value& v : values) encode(w, v);
  return w.take();
}

namespace {

// Containers recurse; bound the depth so a hostile blob of nested object
// markers ("03 0001 'k' 03 ...") cannot exhaust the stack. RTMP command
// payloads are at most a few levels deep in practice.
constexpr int kMaxDepth = 64;

Result<Value> decode_at_depth(ByteReader& r, int depth);

Result<std::string> decode_string_body(ByteReader& r) {
  auto len = r.u16be();
  if (!len) return len.error();
  return r.string(len.value());
}

Result<Object> decode_object_body(ByteReader& r, int depth) {
  Object obj;
  for (;;) {
    auto key = decode_string_body(r);
    if (!key) return key.error();
    if (key.value().empty()) {
      auto marker = r.u8();
      if (!marker) return marker.error();
      if (marker.value() != static_cast<std::uint8_t>(Type::ObjectEnd)) {
        return make_error("amf0", "expected object-end marker");
      }
      return obj;
    }
    auto v = decode_at_depth(r, depth);
    if (!v) return v.error();
    obj[key.value()] = std::move(v).value();
  }
}

Result<Value> decode_at_depth(ByteReader& r, int depth) {
  if (depth > kMaxDepth) {
    return make_error("amf0_depth", "nesting deeper than 64 levels");
  }
  auto marker = r.u8();
  if (!marker) return marker.error();
  switch (static_cast<Type>(marker.value())) {
    case Type::Number: {
      auto n = r.f64be();
      if (!n) return n.error();
      return Value(n.value());
    }
    case Type::Boolean: {
      auto b = r.u8();
      if (!b) return b.error();
      return Value(b.value() != 0);
    }
    case Type::String: {
      auto s = decode_string_body(r);
      if (!s) return s.error();
      return Value(std::move(s).value());
    }
    case Type::Object: {
      auto obj = decode_object_body(r, depth + 1);
      if (!obj) return obj.error();
      return Value(std::move(obj).value());
    }
    case Type::EcmaArray: {
      auto count = r.u32be();
      if (!count) return count.error();
      auto obj = decode_object_body(r, depth + 1);
      if (!obj) return obj.error();
      return Value::ecma_array(std::move(obj).value());
    }
    case Type::Null:
      return Value();
    default:
      return make_error("amf0",
                        "unsupported AMF0 marker " +
                            std::to_string(marker.value()));
  }
}

}  // namespace

Result<Value> decode(ByteReader& r) { return decode_at_depth(r, 0); }

Result<std::vector<Value>> decode_all(BytesView data) {
  ByteReader r(data);
  std::vector<Value> out;
  while (!r.at_end()) {
    auto v = decode(r);
    if (!v) return v.error();
    out.push_back(std::move(v).value());
  }
  return out;
}

}  // namespace psc::amf

// AMF0 (Action Message Format) encoder/decoder.
//
// RTMP command messages ("connect", "play", "onStatus", ...) are AMF0
// encoded: a sequence of typed values. This implements the subset RTMP
// uses: Number, Boolean, String, Object, Null, ECMA Array.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace psc::amf {

enum class Type : std::uint8_t {
  Number = 0x00,
  Boolean = 0x01,
  String = 0x02,
  Object = 0x03,
  Null = 0x05,
  EcmaArray = 0x08,
  ObjectEnd = 0x09,
};

class Value;
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() : type_(Type::Null) {}
  Value(double n) : type_(Type::Number), num_(n) {}
  Value(int n) : type_(Type::Number), num_(n) {}
  Value(bool b) : type_(Type::Boolean), bool_(b) {}
  Value(const char* s) : type_(Type::String), str_(s) {}
  Value(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Value(Object o)
      : type_(Type::Object), obj_(std::make_shared<Object>(std::move(o))) {}

  static Value ecma_array(Object o) {
    Value v{std::move(o)};
    v.type_ = Type::EcmaArray;
    return v;
  }

  Type type() const { return type_; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_object() const {
    return type_ == Type::Object || type_ == Type::EcmaArray;
  }
  bool is_null() const { return type_ == Type::Null; }

  double as_number(double fallback = 0.0) const {
    return is_number() ? num_ : fallback;
  }
  bool as_bool(bool fallback = false) const {
    return type_ == Type::Boolean ? bool_ : fallback;
  }
  const std::string& as_string() const { return str_; }
  const Object& as_object() const {
    static const Object empty;
    return obj_ ? *obj_ : empty;
  }

  /// Object field lookup; returns Null for missing keys / non-objects.
  const Value& operator[](const std::string& key) const;

  bool operator==(const Value& other) const;

 private:
  Type type_;
  double num_ = 0.0;
  bool bool_ = false;
  std::string str_;
  std::shared_ptr<Object> obj_;  // shared: Value stays cheap to copy
};

/// Serialise one value.
void encode(ByteWriter& w, const Value& v);
Bytes encode_all(const std::vector<Value>& values);

/// Decode a single value from the reader position.
Result<Value> decode(ByteReader& r);
/// Decode values until the buffer is exhausted.
Result<std::vector<Value>> decode_all(BytesView data);

}  // namespace psc::amf

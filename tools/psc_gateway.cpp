// psc_gateway: run the real-socket interop gateway, or probe one.
//
// Server mode (default):
//   psc_gateway --rtmp-port=1935 --http-port=8080 --metrics-out=snap.json
// listens on loopback, bridges real RTMP publishers and HLS fetchers onto
// the sim-time service tier, and on SIGINT/SIGTERM stops accepting,
// flushes every in-flight segment and writes the final metrics snapshot
// before exiting 0.
//
// Probe mode (CI smoke / differential validation):
//   psc_gateway --probe --rtmp-port=P --http-port=Q [--frames=N]
// connects to a *running* gateway, publishes a deterministic synthetic
// stream over real RTMP, fetches the playlist and every segment over real
// HTTP, and diffs the served TS bytes against the sans-io sim-only
// pipeline fed the same frames. Exit 0 iff byte-identical.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "bench_common.h"
#include "gateway/clients.h"
#include "gateway/gateway.h"
#include "hls/playlist.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

void usage() {
  std::fprintf(
      stderr,
      "usage: psc_gateway [options]\n"
      "  --rtmp-port=<p>      RTMP listener port (default 1935; 0 = any)\n"
      "  --http-port=<p>      HTTP/HLS listener port (default 8080; 0 = any)\n"
      "  --seed=<n>           service seed (default 1)\n"
      "  --duration=<s>       serve this long then drain (default: until "
      "SIGINT/SIGTERM)\n"
      "  --no-api             do not host the World/ApiServer tier\n"
      "  --segment-target=<s> HLS segment target duration (default 3.6)\n"
      "  --metrics-out=<file> write the final metrics snapshot JSON\n"
      "  --probe              probe a running gateway instead of serving\n"
      "  --frames=<n>         probe: synthetic frames to publish "
      "(default 300)\n"
      "  --stream=<key>       probe: stream key (default gwprobe0000001)\n");
}

int run_probe(std::uint16_t rtmp_port, std::uint16_t http_port, int frames,
              const std::string& stream_key, std::uint64_t seed,
              psc::Duration segment_target) {
  using namespace psc;
  const gateway::SyntheticMedia media =
      gateway::synthetic_frames(seed, frames);

  // Publish over the real socket.
  gateway::PublishClient pub("live", stream_key, seed + 100);
  if (const Status s = pub.connect(rtmp_port); !s.ok()) {
    std::fprintf(stderr, "probe: rtmp connect failed: %s\n",
                 s.error().to_string().c_str());
    return 1;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(20);
  while (!pub.publishing()) {
    if (!pub.step() || std::chrono::steady_clock::now() > deadline) {
      std::fprintf(stderr, "probe: publish never accepted\n");
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pub.send_avc_config(media.sps, media.pps);
  for (const auto& s : media.samples) pub.send_sample(s);
  const auto flush_deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(20);
  while (pub.pending() > 0 && pub.step()) {
    if (std::chrono::steady_clock::now() > flush_deadline) {
      std::fprintf(stderr, "probe: publish flush timed out\n");
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  pub.close();  // orderly departure: the gateway flushes + ENDLISTs

  // Fetch the playlist until it carries ENDLIST, then every segment.
  gateway::HlsFetchClient fetch;
  if (const Status s = fetch.connect(http_port); !s.ok()) {
    std::fprintf(stderr, "probe: http connect failed: %s\n",
                 s.error().to_string().c_str());
    return 1;
  }
  auto fetch_one = [&](const std::string& path,
                       http::Response* out) -> bool {
    fetch.get(path);
    const auto end = std::chrono::steady_clock::now() +
                     std::chrono::seconds(10);
    while (!fetch.done()) {
      if (!fetch.step() || std::chrono::steady_clock::now() > end) {
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    *out = fetch.take_response();
    return true;
  };

  hls::MediaPlaylist playlist;
  for (int attempt = 0; attempt < 200; ++attempt) {
    http::Response resp;
    if (!fetch_one("/hls/" + stream_key + "/media.m3u8", &resp)) {
      std::fprintf(stderr, "probe: playlist fetch failed\n");
      return 1;
    }
    if (resp.status == 200) {
      auto parsed = hls::parse_m3u8(psc::to_string(resp.body.view()));
      if (parsed.ok() && parsed.value().ended) {
        playlist = std::move(parsed.value());
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (!playlist.ended) {
    std::fprintf(stderr, "probe: playlist never reached ENDLIST\n");
    return 1;
  }

  const std::vector<hls::Segment> reference = gateway::sim_reference_segments(
      media, stream_key, segment_target, seed);
  if (playlist.segments.size() != reference.size()) {
    std::fprintf(stderr, "probe: segment count mismatch: served %zu vs %zu\n",
                 playlist.segments.size(), reference.size());
    return 1;
  }
  for (std::size_t i = 0; i < playlist.segments.size(); ++i) {
    http::Response resp;
    if (!fetch_one("/hls/" + stream_key + "/" + playlist.segments[i].uri,
                   &resp) ||
        resp.status != 200) {
      std::fprintf(stderr, "probe: segment fetch failed: %s\n",
                   playlist.segments[i].uri.c_str());
      return 1;
    }
    if (!(resp.body == reference[i].ts_data)) {
      std::fprintf(stderr, "probe: segment %zu differs (%zu vs %zu bytes)\n",
                   i, resp.body.size(), reference[i].ts_data.size());
      return 1;
    }
  }
  std::printf("PROBE OK: %zu segment(s) byte-identical to sim-only pipeline\n",
              playlist.segments.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  psc::gateway::GatewayConfig cfg;
  bool probe = false;
  int frames = 300;
  double duration_s = 0;
  std::string stream_key = "gwprobe0000001";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (psc::bench::Reporter::owns_flag(arg)) continue;
    if (arg.rfind("--rtmp-port=", 0) == 0) {
      cfg.rtmp_port = static_cast<std::uint16_t>(std::atoi(arg.c_str() + 12));
    } else if (arg.rfind("--http-port=", 0) == 0) {
      cfg.http_port = static_cast<std::uint16_t>(std::atoi(arg.c_str() + 12));
    } else if (arg.rfind("--seed=", 0) == 0) {
      cfg.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--duration=", 0) == 0) {
      duration_s = std::atof(arg.c_str() + 11);
    } else if (arg == "--no-api") {
      cfg.enable_api = false;
    } else if (arg.rfind("--segment-target=", 0) == 0) {
      cfg.segment_target = psc::seconds(std::atof(arg.c_str() + 17));
    } else if (arg == "--probe") {
      probe = true;
    } else if (arg.rfind("--frames=", 0) == 0) {
      frames = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--stream=", 0) == 0) {
      stream_key = arg.substr(9);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "psc_gateway: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (probe) {
    return run_probe(cfg.rtmp_port, cfg.http_port, frames, stream_key,
                     cfg.seed, cfg.segment_target);
  }

  psc::bench::Reporter reporter("psc_gateway", argc, argv);
  psc::bench::WallTimer timer;

  psc::gateway::Gateway gw(cfg);
  if (const psc::Status s = gw.start(); !s.ok()) {
    std::fprintf(stderr, "psc_gateway: start failed: %s\n",
                 s.error().to_string().c_str());
    return 1;
  }
  std::printf("psc_gateway: rtmp://127.0.0.1:%u/live  http://127.0.0.1:%u\n",
              gw.rtmp_port(), gw.http_port());
  std::fflush(stdout);

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  gw.run([&] {
    return g_stop == 0 &&
           (duration_s <= 0 || timer.elapsed_s() < duration_s);
  });

  reporter.local().merge(gw.metrics());
  reporter.finish(timer.elapsed_s(),
                  {{"http_requests", static_cast<double>(gw.http_requests())},
                   {"segments_served",
                    static_cast<double>(gw.segments_served())},
                   {"bytes_served", static_cast<double>(gw.bytes_served())},
                   {"rtmp_accepted", static_cast<double>(gw.rtmp_accepted())},
                   {"segments_stored",
                    static_cast<double>(gw.store().segments_stored())},
                   {"drained", gw.drained() ? 1.0 : 0.0}});
  return 0;
}

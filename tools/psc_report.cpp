// psc_report: paired diff of two observability snapshots.
//
// Loads a baseline and a current run — either bench snapshot files
// (--metrics-out=FILE output: {"config","metrics","attribution","slo",
// "process"}) or files containing a `BENCH {...}` line (the last one
// wins) — and prints:
//
//   * per-metric deltas (counters, gauges, histogram summary stats),
//   * the per-cause stall-budget shift from the attribution sections,
//   * an SLO pass/fail table for both runs.
//
// Exit status is the CI contract (docs/OBSERVABILITY.md):
//   0  no regression: every compared value within --rel-tol (default 0,
//      i.e. byte-identical metrics — the determinism check), no SLO
//      newly failing
//   1  regression: a value moved beyond tolerance or an SLO that passed
//      in the baseline fails in the current run
//   2  usage or I/O error (unreadable file, malformed JSON)
//
// The "process" section is wall-clock and nondeterministic; it is never
// compared.
//
// Usage:
//   psc_report BASELINE CURRENT [--rel-tol=X] [--quiet]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "json/json.h"

namespace {

using psc::json::Value;

struct Snapshot {
  std::map<std::string, double> metrics;  // flattened series -> value
  std::map<std::string, double> causes;   // cause -> stall seconds
  double total_stall_s = 0;
  std::map<std::string, bool> slo;        // objective -> pass
  bool has_slo = false;
};

bool read_file(const char* path, std::string* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

/// Flatten one Registry JSON ({"counters":..,"gauges":..,"histograms":..})
/// into name -> value entries. Histograms contribute their summary stats
/// as `name.count`, `name.sum`, ... Exemplars are identity metadata, not
/// measurements, so they are not compared.
void flatten_metrics(const Value& m, std::map<std::string, double>* out) {
  for (const char* kind : {"counters", "gauges"}) {
    for (const auto& [name, v] : m[kind].as_object()) {
      (*out)[name] = v.as_number();
    }
  }
  for (const auto& [name, h] : m["histograms"].as_object()) {
    for (const auto& [stat, v] : h.as_object()) {
      if (stat == "exemplars") continue;
      (*out)[name + "." + stat] = v.as_number();
    }
  }
}

void load_attribution(const Value& a, Snapshot* s) {
  s->total_stall_s = a["total_stall_s"].as_number();
  for (const auto& c : a["causes"].as_array()) {
    s->causes[c["cause"].as_string()] = c["stall_s"].as_number();
  }
}

void load_slo(const Value& slo, Snapshot* s) {
  for (const auto& r : slo["results"].as_array()) {
    s->slo[r["name"].as_string()] = r["pass"].as_bool(true);
    s->has_slo = true;
  }
}

/// A BENCH line's JSON object flattens directly: numbers become metrics,
/// the cause_N string fields pair up with their cause_N_s values.
void load_bench_line(const Value& obj, Snapshot* s) {
  for (const auto& [key, v] : obj.as_object()) {
    if (v.is_number()) {
      // wall_s and threads vary run to run / machine to machine; a diff
      // on them is noise, not a regression.
      if (key == "wall_s" || key == "threads") continue;
      s->metrics[key] = v.as_number();
    }
  }
  for (int i = 1; i <= 3; ++i) {
    char name[16], secs[16];
    std::snprintf(name, sizeof(name), "cause_%d", i);
    std::snprintf(secs, sizeof(secs), "cause_%d_s", i);
    const std::string cause = obj[name].as_string();
    if (!cause.empty()) s->causes[cause] = obj[secs].as_number();
  }
}

bool load_snapshot(const char* path, Snapshot* s) {
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "psc_report: cannot read %s\n", path);
    return false;
  }
  // A file with BENCH lines (bench stdout) diffs the last line's fields.
  std::size_t bench = std::string::npos;
  for (std::size_t pos = text.find("BENCH {"); pos != std::string::npos;
       pos = text.find("BENCH {", pos + 1)) {
    bench = pos;
  }
  if (bench != std::string::npos) {
    const std::size_t eol = text.find('\n', bench);
    const std::string line = text.substr(
        bench + 6,
        eol == std::string::npos ? std::string::npos : eol - bench - 6);
    auto parsed = psc::json::parse(line);
    if (!parsed.ok()) {
      std::fprintf(stderr, "psc_report: %s: bad BENCH line: %s\n", path,
                   parsed.error().to_string().c_str());
      return false;
    }
    load_bench_line(parsed.value(), s);
    return true;
  }
  auto parsed = psc::json::parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "psc_report: %s: %s\n", path,
                 parsed.error().to_string().c_str());
    return false;
  }
  const Value& root = parsed.value();
  flatten_metrics(root.has("metrics") ? root["metrics"] : root, &s->metrics);
  if (root.has("attribution")) load_attribution(root["attribution"], s);
  if (root.has("slo")) load_slo(root["slo"], s);
  return true;
}

bool within(double base, double cur, double rel_tol) {
  if (base == cur) return true;
  const double mag = std::fmax(std::fabs(base), std::fabs(cur));
  return std::fabs(cur - base) <= rel_tol * mag;
}

}  // namespace

int main(int argc, char** argv) {
  const char* base_path = nullptr;
  const char* cur_path = nullptr;
  double rel_tol = 0;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--rel-tol=", 0) == 0) {
      rel_tol = std::atof(arg.c_str() + 10);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (base_path == nullptr) {
      base_path = argv[i];
    } else if (cur_path == nullptr) {
      cur_path = argv[i];
    } else {
      std::fprintf(stderr, "psc_report: unexpected argument %s\n", argv[i]);
      return 2;
    }
  }
  if (base_path == nullptr || cur_path == nullptr) {
    std::fprintf(stderr,
                 "usage: psc_report BASELINE CURRENT [--rel-tol=X] "
                 "[--quiet]\n");
    return 2;
  }

  Snapshot base, cur;
  if (!load_snapshot(base_path, &base) || !load_snapshot(cur_path, &cur)) {
    return 2;
  }

  // --- Per-metric deltas over the union of series names. A series that
  // exists on only one side is a structural change, hence a regression.
  int changed = 0, compared = 0;
  std::map<std::string, double> all = base.metrics;
  for (const auto& [k, v] : cur.metrics) all.emplace(k, 0);
  if (!quiet) std::printf("metric deltas (%s -> %s):\n", base_path, cur_path);
  for (const auto& [name, unused] : all) {
    (void)unused;
    const auto b = base.metrics.find(name);
    const auto c = cur.metrics.find(name);
    ++compared;
    if (b == base.metrics.end() || c == cur.metrics.end()) {
      ++changed;
      if (!quiet) {
        std::printf("  %-48s %s\n", name.c_str(),
                    b == base.metrics.end() ? "added" : "removed");
      }
      continue;
    }
    if (within(b->second, c->second, rel_tol)) continue;
    ++changed;
    if (!quiet) {
      std::printf("  %-48s %.9g -> %.9g (%+.9g)\n", name.c_str(), b->second,
                  c->second, c->second - b->second);
    }
  }
  if (!quiet && changed == 0) {
    std::printf("  (all %d series identical within tolerance)\n", compared);
  }

  // --- Per-cause stall budget shift.
  std::map<std::string, double> cause_union = base.causes;
  for (const auto& [k, v] : cur.causes) cause_union.emplace(k, 0);
  if (!quiet && !cause_union.empty()) {
    std::printf("\nstall budget by cause (seconds):\n");
    std::printf("  %-18s %12s %12s %12s\n", "cause", "baseline", "current",
                "shift");
    for (const auto& [cause, unused] : cause_union) {
      (void)unused;
      const auto b = base.causes.find(cause);
      const auto c = cur.causes.find(cause);
      const double bv = b == base.causes.end() ? 0 : b->second;
      const double cv = c == cur.causes.end() ? 0 : c->second;
      std::printf("  %-18s %12.3f %12.3f %+12.3f\n", cause.c_str(), bv, cv,
                  cv - bv);
    }
  }

  // --- SLO pass/fail table. A newly failing objective is a regression
  // even when every raw delta sits inside the tolerance.
  int slo_regressions = 0;
  if (base.has_slo || cur.has_slo) {
    std::map<std::string, bool> names;
    for (const auto& [k, v] : base.slo) names.emplace(k, v);
    for (const auto& [k, v] : cur.slo) names.emplace(k, v);
    if (!quiet) {
      std::printf("\nSLO verdicts:\n");
      std::printf("  %-28s %-10s %-10s\n", "objective", "baseline",
                  "current");
    }
    for (const auto& [name, unused] : names) {
      (void)unused;
      const auto b = base.slo.find(name);
      const auto c = cur.slo.find(name);
      const bool bp = b == base.slo.end() || b->second;
      const bool cp = c == cur.slo.end() || c->second;
      if (bp && !cp) ++slo_regressions;
      if (!quiet) {
        std::printf("  %-28s %-10s %-10s%s\n", name.c_str(),
                    b == base.slo.end() ? "-" : (bp ? "pass" : "FAIL"),
                    c == cur.slo.end() ? "-" : (cp ? "pass" : "FAIL"),
                    bp && !cp ? "  <- regression" : "");
      }
    }
  }

  const bool regression = changed > 0 || slo_regressions > 0;
  if (!quiet) {
    std::printf("\n%d/%d series changed, %d SLO regression(s): %s\n",
                changed, compared, slo_regressions,
                regression ? "REGRESSION" : "OK");
  }
  return regression ? 1 : 0;
}

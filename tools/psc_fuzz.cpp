// psc_fuzz: deterministic fuzz + round-trip differential campaign runner.
//
//   psc_fuzz --target=all --iters=2000 --seed=1
//   psc_fuzz --target=mpegts --repro=tests/corpus/crashes/mpegts-....bin
//   psc_fuzz --target=all --write-corpus --corpus-dir=tests/corpus
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error. The per-target
// digest line is byte-stable for a given (seed, iters, corpus), which CI
// uses to prove the campaign itself is deterministic.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "gateway/oracle.h"
#include "obs/metrics.h"
#include "testing/runner.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: psc_fuzz [options]\n"
               "  --target=<name|all>   target to fuzz (default: all)\n"
               "  --iters=<n>           iterations per target (default: "
               "1000)\n"
               "  --seed=<n>            campaign seed (default: 1)\n"
               "  --corpus-dir=<dir>    checked-in seed corpus root\n"
               "  --crash-dir=<dir>     reproducer output dir (default: "
               "tests/corpus/crashes)\n"
               "  --hang-timeout=<s>    per-iteration alarm, 0 = off "
               "(default: 5)\n"
               "  --write-corpus        dump generated seeds into "
               "--corpus-dir and exit\n"
               "  --repro=<file>        run one saved input through "
               "--target and exit\n"
               "  --gateway             live-peer oracle: replay mutants "
               "over real loopback\n"
               "                        sockets against an in-process "
               "gateway\n"
               "  --list                list registered targets\n"
               "  --metrics-out=<file>  write a JSON metrics snapshot "
               "(iterations/findings per target) at exit\n");
}

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  psc::testing::FuzzOptions opts;
  bool list = false;
  bool gateway_oracle = false;
  std::string metrics_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    std::uint64_t n = 0;
    if (arg.rfind("--target=", 0) == 0) {
      opts.target = value("--target=");
    } else if (arg.rfind("--iters=", 0) == 0) {
      if (!parse_u64(value("--iters="), &n)) {
        usage();
        return 2;
      }
      opts.iters = n;
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!parse_u64(value("--seed="), &n)) {
        usage();
        return 2;
      }
      opts.seed = n;
    } else if (arg.rfind("--corpus-dir=", 0) == 0) {
      opts.corpus_dir = value("--corpus-dir=");
    } else if (arg.rfind("--crash-dir=", 0) == 0) {
      opts.crash_dir = value("--crash-dir=");
    } else if (arg.rfind("--hang-timeout=", 0) == 0) {
      if (!parse_u64(value("--hang-timeout="), &n)) {
        usage();
        return 2;
      }
      opts.hang_timeout_s = static_cast<int>(n);
    } else if (arg == "--write-corpus") {
      opts.write_corpus = true;
    } else if (arg.rfind("--repro=", 0) == 0) {
      opts.repro_file = value("--repro=");
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = value("--metrics-out=");
      psc::obs::set_metrics_enabled(true);
    } else if (arg == "--gateway") {
      gateway_oracle = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "psc_fuzz: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (list) {
    psc::testing::register_builtin_targets();
    for (const auto& t :
         psc::testing::TargetRegistry::instance().targets()) {
      std::printf("%-16s %s\n", t.name.c_str(), t.description.c_str());
    }
    return 0;
  }

  if (gateway_oracle) {
    psc::gateway::OracleOptions gw_opts;
    gw_opts.iters = opts.iters;
    gw_opts.seed = opts.seed;
    gw_opts.corpus_dir = opts.corpus_dir;
    return psc::gateway::run_gateway_oracle(gw_opts, std::cout);
  }

  auto reports = psc::testing::run_fuzz(opts, std::cout);
  if (!reports) {
    std::fprintf(stderr, "psc_fuzz: %s\n",
                 reports.error().to_string().c_str());
    return 2;
  }
  std::uint64_t findings = 0;
  for (const auto& r : reports.value()) findings += r.findings;
  if (!metrics_out.empty() && psc::obs::metrics_enabled()) {
    psc::obs::Registry reg;
    for (const auto& r : reports.value()) {
      reg.counter("fuzz_iterations_total{target=\"" + r.name + "\"}")
          .add(static_cast<double>(r.iterations));
      reg.counter("fuzz_findings_total{target=\"" + r.name + "\"}")
          .add(static_cast<double>(r.findings));
    }
    if (std::FILE* f = std::fopen(metrics_out.c_str(), "w")) {
      const std::string json =
          "{\"config\":{\"bench\":\"psc_fuzz\"},\"metrics\":" +
          reg.to_json() + ",\"process\":" + psc::obs::process_to_json() +
          "}\n";
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "psc_fuzz: cannot write %s\n",
                   metrics_out.c_str());
      return 2;
    }
  }
  return findings == 0 ? 0 : 1;
}
